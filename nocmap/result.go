package nocmap

import (
	"math"

	"repro/internal/core"
)

// Routing mode names used in Result.Routing.Mode.
const (
	ModeSingleMinPath = "single-minpath"
	ModeSplitMinPaths = "split-minpaths"
	ModeSplitAllPaths = "split-allpaths"
	ModeXY            = "xy"
)

// Cost is the solved mapping's cost breakdown.
type Cost struct {
	// Comm is the Eq. 7 communication cost in hops * MB/s — the paper's
	// primary objective.
	Comm float64 `json:"comm"`
	// MaxLoad is the hottest link's bandwidth in MB/s: the minimum
	// uniform link bandwidth the routing needs.
	MaxLoad float64 `json:"max_load"`
	// Flow is the total link flow of the split routing (the MCF2
	// objective); zero for single-path results.
	Flow float64 `json:"flow,omitempty"`
	// Slack is the total bandwidth violation of the split routing (the
	// MCF1 objective); zero when the constraints hold.
	Slack float64 `json:"slack,omitempty"`
}

// Routing is the routed traffic of a Result.
type Routing struct {
	// Mode names the routing regime: ModeSingleMinPath, ModeSplitMinPaths
	// or ModeSplitAllPaths.
	Mode string `json:"mode"`
	// Loads is the total bandwidth per link, indexed by link ID.
	Loads []float64 `json:"loads,omitempty"`
	// Paths holds, per commodity, the node sequence source..destination
	// (single-path modes only).
	Paths [][]int `json:"paths,omitempty"`
	// Flows holds, per commodity and link, the split bandwidth (split
	// modes only).
	Flows [][]float64 `json:"flows,omitempty"`
}

// Result is the outcome of a Solve call. It serializes to JSON; the
// assignment (core index -> topology node) plus the originating Problem
// suffice to rebuild a live Mapping via Problem.MappingOf.
type Result struct {
	// Algorithm is the registry name that produced the result.
	Algorithm string `json:"algorithm"`
	// Assignment maps core index -> topology node.
	Assignment []int `json:"assignment"`
	// Cores names the cores, index-aligned with Assignment, so a
	// serialized result is interpretable on its own.
	Cores []string `json:"cores,omitempty"`
	// Feasible reports whether the routing satisfies every link's
	// bandwidth (Inequality 3).
	Feasible bool `json:"feasible"`
	// Partial marks a result returned early by a cancelled context: the
	// mapping is valid, but refinement did not run to completion.
	Partial bool `json:"partial,omitempty"`
	// Swaps counts the pairwise swap candidates the refinement
	// considered (NMAP algorithms only).
	Swaps int  `json:"swaps,omitempty"`
	Cost  Cost `json:"cost"`
	// Routing carries the routed traffic; nil when a split solve was
	// cancelled before its final routing.
	Routing *Routing `json:"routing,omitempty"`

	mapping *Mapping
}

// Mapping returns the live mapping handle behind the result (nil on a
// Result deserialized from JSON — use Problem.MappingOf to revive one).
func (r *Result) Mapping() *Mapping { return r.mapping }

// String renders the mapped grid with core names, row by row.
func (r *Result) String() string {
	if r.mapping == nil {
		return "<unbound result: use Problem.MappingOf>"
	}
	return r.mapping.String()
}

// assignmentOf flattens a mapping to core index -> node.
func assignmentOf(m *Mapping, n int) []int {
	a := make([]int, n)
	for v := range a {
		a[v] = m.NodeOf(v)
	}
	return a
}

// newResult fills the algorithm-independent fields.
func (r *Request) newResult(m *Mapping) *Result {
	return &Result{
		Algorithm:  r.Options.Algorithm,
		Assignment: assignmentOf(m, r.Problem.app.N()),
		Cores:      append([]string(nil), r.Problem.app.Cores...),
		mapping:    m,
	}
}

// singlePathResult scores a complete mapping under congestion-aware
// single minimum-path routing.
func (r *Request) singlePathResult(m *Mapping, swaps int) *Result {
	route := r.eng.RouteSinglePath(m)
	res := r.newResult(m)
	res.Swaps = swaps
	res.Feasible = route.Feasible
	res.Cost = Cost{Comm: m.CommCost(), MaxLoad: route.MaxLoad}
	res.Routing = &Routing{Mode: ModeSingleMinPath, Loads: route.Loads, Paths: route.Paths}
	return res
}

// splitResult scores a complete mapping from a split-refinement outcome.
func (r *Request) splitResult(sr *core.SplitResult, policy SplitPolicy) *Result {
	res := r.newResult(sr.Mapping)
	res.Swaps = sr.Swaps
	res.Cost.Comm = sr.Mapping.CommCost()
	mode := ModeSplitAllPaths
	if policy == SplitMinPaths {
		mode = ModeSplitMinPaths
	}
	if sr.Route == nil {
		// Cancelled before the final routing: the mapping stands alone.
		res.Partial = true
		return res
	}
	res.Feasible = sr.Route.Feasible
	res.Cost.Slack = sr.Route.Slack
	maxLoad := 0.0
	for _, l := range sr.Route.Loads {
		if l > maxLoad {
			maxLoad = l
		}
	}
	res.Cost.MaxLoad = maxLoad
	if !math.IsInf(sr.Route.Cost, 1) {
		res.Cost.Flow = sr.Route.Cost
	}
	res.Routing = &Routing{Mode: mode, Loads: sr.Route.Loads, Flows: sr.Route.Flows}
	return res
}
