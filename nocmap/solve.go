package nocmap

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
)

// Solve maps the problem's cores onto its topology with the selected
// algorithm (default "nmap-single") and returns the scored result.
//
// The context governs the whole solve: cancellation or deadline expiry
// stops the iterating algorithms ("nmap-single", "nmap-split", "pbb")
// between candidate evaluations, which return the best valid mapping
// committed so far, marked Partial, together with ctx.Err(). The
// instantaneous baselines ("pmap", "gmap") have no intermediate state
// to salvage and return a nil Result with ctx.Err(). For a given
// problem and options the result is deterministic — including across
// WithWorkers settings.
func Solve(ctx context.Context, p *Problem, opts ...Option) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("nocmap: %w", ErrNilInput)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	fn, ok := lookup(o.Algorithm)
	if !ok {
		return nil, fmt.Errorf("nocmap: %w %q (have %s)",
			ErrUnknownAlgorithm, o.Algorithm, strings.Join(Algorithms(), ", "))
	}
	topo := p.topo
	if o.BandwidthCap != 0 {
		capped, err := cappedTopology(p.topo, o.BandwidthCap)
		if err != nil {
			return nil, err
		}
		topo = capped
	}
	eng, err := p.solverEngine(topo, &o)
	if err != nil {
		return nil, err
	}
	req := &Request{Problem: p, Topology: topo, Options: o, eng: eng}
	if o.Progress != nil {
		eng.OnSweep = func(ev core.SweepEvent) {
			req.Emit(Event{Phase: ev.Phase, Step: ev.Sweep, Total: ev.Sweeps, Best: ev.Best})
		}
	}
	return fn(ctx, req)
}

// cappedTopology rebuilds the topology with every link's bandwidth set
// to bw, leaving the original untouched.
func cappedTopology(t *Topology, bw float64) (*Topology, error) {
	return buildTopology(t.Kind, t.W, t.H, bw)
}

// The built-in algorithms. Each is a thin adapter from the engine's
// native entry point to the Result shape.
func init() {
	Register("nmap-single", solveNMAPSingle)
	Register("nmap-split", solveNMAPSplit)
	Register("pmap", solvePMAP)
	Register("gmap", solveGMAP)
	Register("pbb", solvePBB)
}

// solveNMAPSingle runs the paper's mappingwithsinglepath(): greedy
// initialization plus pairwise-swap refinement under congestion-aware
// single minimum-path routing.
func solveNMAPSingle(ctx context.Context, req *Request) (*Result, error) {
	sr, err := req.eng.MapSinglePathCtx(ctx)
	res := req.singlePathResult(sr.Mapping, sr.Swaps)
	if err != nil {
		res.Partial = true
	}
	return res, err
}

// solveNMAPSplit runs mappingwithsplitting() under the configured
// SplitPolicy: the refinement first minimizes bandwidth violation, then
// the total split flow.
func solveNMAPSplit(ctx context.Context, req *Request) (*Result, error) {
	sr, err := req.eng.MapWithSplittingCtx(ctx, req.Options.Split.mode())
	if sr == nil {
		return nil, err
	}
	res := req.splitResult(sr, req.Options.Split)
	if err != nil {
		res.Partial = true
	}
	return res, err
}

// solvePMAP runs the two-phase cluster mapping baseline of Koziris et
// al.; placement only, scored under single minimum-path routing.
// Cancellation is honored at entry and again before the result is
// packaged (the placement itself is a single uninterruptible pass).
func solvePMAP(ctx context.Context, req *Request) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := baseline.PMAP(req.eng)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return req.Finish(m)
}

// solveGMAP runs the greedy upper-bound-cost mapping baseline of
// Hu–Marculescu; placement only, scored under single minimum-path
// routing. Cancellation is honored like solvePMAP's.
func solveGMAP(ctx context.Context, req *Request) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := baseline.GMAP(req.eng)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return req.Finish(m)
}

// solvePBB runs the partial branch-and-bound baseline, honoring
// WithPBBBudget, WithFastQueue and WithWorkers; cancellation returns the
// best (possibly greedily completed) mapping found so far.
func solvePBB(ctx context.Context, req *Request) (*Result, error) {
	cfg := baseline.DefaultPBBConfig()
	if req.Options.MaxQueue > 0 {
		cfg.MaxQueue = req.Options.MaxQueue
	}
	if req.Options.MaxExpand > 0 {
		cfg.MaxExpand = req.Options.MaxExpand
	}
	cfg.FastQueue = req.Options.FastQueue
	cfg.Workers = req.Options.Workers
	if req.Options.Progress != nil {
		cfg.OnExpand = func(expanded, queue int, incumbent float64) {
			req.Emit(Event{Phase: "expand", Step: expanded, Total: cfg.MaxExpand, Best: incumbent})
		}
	}
	m, err := baseline.PBBCtx(ctx, req.eng, cfg)
	res := req.singlePathResult(m, 0)
	if err != nil {
		res.Partial = true
	}
	return res, err
}
