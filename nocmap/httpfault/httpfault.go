// Package httpfault is a fault-injecting reverse proxy for exercising
// fleet failure paths in tests: it fronts one backend and, on command,
// drops connections, delays requests or blackholes them entirely. A
// shard router pointed at the proxy instead of the backend sees exactly
// what it would see from a crashed, slow or wedged process — without
// the test having to actually crash one (and lose its listener port).
//
// The proxy is mode-switched at runtime, so one test can walk a backend
// through healthy → dead → healthy and watch the router's failure
// detector, promotion and anti-entropy respond.
package httpfault

import (
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"
)

// Mode is the proxy's current behavior.
type Mode int

const (
	// Pass forwards requests untouched.
	Pass Mode = iota
	// Drop aborts every connection without writing a response — what a
	// crashed process's closed port looks like to a client mid-request.
	Drop
	// Blackhole holds every request open, never answering — a wedged
	// process or a silently partitioned network. Clients only escape
	// via their own timeouts or request-context cancellation.
	Blackhole
)

// Proxy is the fault-injecting reverse proxy. Construct with New; it
// implements http.Handler.
type Proxy struct {
	rp *httputil.ReverseProxy

	mu       sync.Mutex
	mode     Mode
	delay    time.Duration
	failNext int
	dropped  uint64
	passed   uint64
}

// New returns a proxy forwarding to the backend at target (a base URL
// such as "http://127.0.0.1:8537").
func New(target string) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	return &Proxy{rp: httputil.NewSingleHostReverseProxy(u)}, nil
}

// SetMode switches the proxy's behavior. Requests already in flight
// under Blackhole stay held; new requests follow the new mode.
func (p *Proxy) SetMode(m Mode) {
	p.mu.Lock()
	p.mode = m
	p.mu.Unlock()
}

// FailNext makes the proxy drop exactly the next n requests and then
// revert to the current mode — the deterministic way to test "one
// transient failure" paths without racing a mode flip against the
// request under test.
func (p *Proxy) FailNext(n int) {
	p.mu.Lock()
	p.failNext = n
	p.mu.Unlock()
}

// SetDelay adds a fixed latency before every forwarded request (Pass
// mode only). Zero removes it.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Counts reports how many requests were forwarded and how many were
// dropped or blackholed.
func (p *Proxy) Counts() (passed, dropped uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.passed, p.dropped
}

// ServeHTTP applies the current mode to one request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	mode, delay := p.mode, p.delay
	if p.failNext > 0 {
		p.failNext--
		mode = Drop
	}
	p.mu.Unlock()
	switch mode {
	case Drop:
		p.mu.Lock()
		p.dropped++
		p.mu.Unlock()
		// ErrAbortHandler makes net/http sever the connection with no
		// response bytes: the client sees a transport error, just like a
		// connection reset from a dying process.
		panic(http.ErrAbortHandler)
	case Blackhole:
		p.mu.Lock()
		p.dropped++
		p.mu.Unlock()
		<-r.Context().Done() // hold until the client gives up
		panic(http.ErrAbortHandler)
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}
	p.mu.Lock()
	p.passed++
	p.mu.Unlock()
	p.rp.ServeHTTP(w, r)
}
