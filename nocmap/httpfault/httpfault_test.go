package httpfault_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/nocmap/httpfault"
)

func proxyFixture(t *testing.T) (*httpfault.Proxy, string) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	t.Cleanup(backend.Close)
	p, err := httpfault.New(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front.URL
}

func get(t *testing.T, url string) (string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}

func TestPassForwards(t *testing.T) {
	p, url := proxyFixture(t)
	body, err := get(t, url)
	if err != nil || body != "pong" {
		t.Fatalf("pass mode: body=%q err=%v", body, err)
	}
	if passed, dropped := p.Counts(); passed != 1 || dropped != 0 {
		t.Fatalf("counts = (%d passed, %d dropped), want (1, 0)", passed, dropped)
	}
}

func TestDropSeversConnections(t *testing.T) {
	p, url := proxyFixture(t)
	p.SetMode(httpfault.Drop)
	if _, err := get(t, url); err == nil {
		t.Fatal("drop mode answered instead of severing the connection")
	}
	p.SetMode(httpfault.Pass)
	if body, err := get(t, url); err != nil || body != "pong" {
		t.Fatalf("after recovery: body=%q err=%v", body, err)
	}
	if passed, dropped := p.Counts(); passed != 1 || dropped != 1 {
		t.Fatalf("counts = (%d passed, %d dropped), want (1, 1)", passed, dropped)
	}
}

func TestFailNextDropsExactlyN(t *testing.T) {
	p, url := proxyFixture(t)
	p.FailNext(2)
	for i := 0; i < 2; i++ {
		if _, err := get(t, url); err == nil {
			t.Fatalf("request %d should have been dropped", i)
		}
	}
	// The budget is spent: no mode flip needed to recover.
	if body, err := get(t, url); err != nil || body != "pong" {
		t.Fatalf("after FailNext budget: body=%q err=%v", body, err)
	}
}

func TestDelayHoldsRequests(t *testing.T) {
	p, url := proxyFixture(t)
	p.SetDelay(50 * time.Millisecond)
	start := time.Now()
	if body, err := get(t, url); err != nil || body != "pong" {
		t.Fatalf("delayed request: body=%q err=%v", body, err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request answered in %v, before the injected %v latency", elapsed, 50*time.Millisecond)
	}
}

func TestBlackholeHoldsUntilClientGivesUp(t *testing.T) {
	p, url := proxyFixture(t)
	p.SetMode(httpfault.Blackhole)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	start := time.Now()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("blackhole answered")
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("blackholed request failed after %v, before the client timeout", elapsed)
	}
}
