package nocmap

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSolveCancelled asserts every built-in algorithm under an already
// cancelled context returns promptly with ctx.Err() and a valid partial
// result.
func TestSolveCancelled(t *testing.T) {
	p := vopdProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []string{"nmap-single", "nmap-split", "pbb"} {
		t.Run(algo, func(t *testing.T) {
			start := time.Now()
			res, err := Solve(ctx, p, WithAlgorithm(algo))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil || !res.Partial {
				t.Fatal("cancelled solve must return a partial result")
			}
			if m := res.Mapping(); m == nil || !m.Complete() || !m.Valid() {
				t.Fatal("partial result must carry a valid complete mapping")
			}
			if d := time.Since(start); d > 5*time.Second {
				t.Fatalf("cancelled solve took %v", d)
			}
		})
	}
	// The instantaneous baselines surface plain ctx.Err() with no result.
	for _, algo := range []string{"pmap", "gmap"} {
		if _, err := Solve(ctx, p, WithAlgorithm(algo)); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", algo, err)
		}
	}
}

// TestSolveDeadline asserts deadline expiry degrades to a valid partial
// result (an already-expired deadline keeps the test deterministic).
func TestSolveDeadline(t *testing.T) {
	p := vopdProblem(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := Solve(ctx, p, WithAlgorithm("nmap-split"), WithWorkers(-1))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil || !res.Partial {
		t.Fatal("deadline must yield a partial result")
	}
	if m := res.Mapping(); m == nil || !m.Complete() || !m.Valid() {
		t.Fatal("partial mapping invalid")
	}
}
