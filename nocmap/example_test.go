package nocmap_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"

	"repro/nocmap"
)

// ExampleSolve maps a small hand-built application onto a 2x2 mesh with
// the default algorithm and reads the cost breakdown.
func ExampleSolve() {
	app := nocmap.NewCoreGraph("tiny-soc")
	app.Connect("cpu", "mem", 400) // MB/s
	app.Connect("mem", "dsp", 120)
	app.Connect("dsp", "cpu", 80)

	mesh, err := nocmap.NewMesh(2, 2, 1000)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := nocmap.NewProblem(app, mesh)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocmap.Solve(context.Background(), problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("feasible: %v\n", res.Feasible)
	fmt.Printf("comm cost: %.0f hops*MB/s\n", res.Cost.Comm)
	fmt.Printf("hottest link: %.0f MB/s\n", res.Cost.MaxLoad)
	// Output:
	// feasible: true
	// comm cost: 680 hops*MB/s
	// hottest link: 400 MB/s
}

// ExampleSolve_options selects the split-traffic NMAP variant with
// options and compares the bandwidth requirement against single-path
// routing.
func ExampleSolve_options() {
	app, err := nocmap.LoadApp("dsp")
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := nocmap.NewMesh(app.W, app.H, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := nocmap.NewProblem(app.Graph, mesh)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocmap.Solve(context.Background(), problem,
		nocmap.WithAlgorithm("nmap-split"),
		nocmap.WithSplitPolicy(nocmap.SplitAllPaths),
		nocmap.WithWorkers(-1)) // bit-identical to sequential
	if err != nil {
		log.Fatal(err)
	}
	single, err := problem.MinBandwidth(res.Mapping(), nocmap.RouteSingleMinPath)
	if err != nil {
		log.Fatal(err)
	}
	perFlow, err := problem.MinBandwidthPerFlow(res.Mapping(), nocmap.SplitAllPaths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-path needs %.0f MB/s links\n", single)
	fmt.Printf("splitting needs %.0f MB/s per flow\n", perFlow)
	// Output:
	// single-path needs 600 MB/s links
	// splitting needs 200 MB/s per flow
}

// ExampleWithProgress streams the solver's refinement progress while it
// runs: the "initialize" event reports the greedy placement's Eq. 7
// cost, then one "sweep" event follows each pairwise-swap refinement
// sweep with the incumbent cost. The callback runs on the solver's
// goroutine — keep it cheap.
func ExampleWithProgress() {
	app := nocmap.NewCoreGraph("tiny-soc")
	app.Connect("cpu", "mem", 400) // MB/s
	app.Connect("mem", "dsp", 120)
	app.Connect("dsp", "cpu", 80)
	mesh, err := nocmap.NewMesh(2, 2, 1000)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := nocmap.NewProblem(app, mesh)
	if err != nil {
		log.Fatal(err)
	}
	_, err = nocmap.Solve(context.Background(), problem,
		nocmap.WithProgress(func(ev nocmap.Event) {
			fmt.Printf("%s %s %d/%d best=%.0f\n", ev.Algorithm, ev.Phase, ev.Step, ev.Total, ev.Best)
		}))
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// nmap-single initialize 0/4 best=680
	// nmap-single sweep 0/4 best=680
	// nmap-single sweep 1/4 best=680
	// nmap-single sweep 2/4 best=680
	// nmap-single sweep 3/4 best=680
}

// ExampleSolve_cancellation shows the context contract: cancellation
// stops the iterating algorithms between candidate evaluations and
// returns the best valid mapping committed so far, marked Partial,
// together with ctx.Err() — never a panic, never an invalid mapping.
// (An already-cancelled context keeps the example deterministic: the
// solver surrenders right after the greedy initialization.)
func ExampleSolve_cancellation() {
	app, err := nocmap.LoadApp("vopd")
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := nocmap.NewMesh(app.W, app.H, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := nocmap.NewProblem(app.Graph, mesh)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // a deadline or a remote disconnect in real use
	res, err := nocmap.Solve(ctx, problem)
	fmt.Printf("cancelled: %v\n", errors.Is(err, context.Canceled))
	fmt.Printf("partial: %v\n", res.Partial)
	m := res.Mapping()
	fmt.Printf("valid complete mapping: %v\n", m.Complete() && m.Valid())
	fmt.Printf("comm cost so far: %.0f hops*MB/s\n", res.Cost.Comm)
	// Output:
	// cancelled: true
	// partial: true
	// valid complete mapping: true
	// comm cost so far: 4011 hops*MB/s
}

// ExampleRegister plugs a custom algorithm into the registry: phase-one
// greedy placement only, packaged by the Request helpers so it scores
// exactly like the built-ins.
func ExampleRegister() {
	nocmap.Register("greedy-only", func(ctx context.Context, req *nocmap.Request) (*nocmap.Result, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return req.Finish(req.InitialMapping())
	})

	app, err := nocmap.LoadApp("vopd")
	if err != nil {
		log.Fatal(err)
	}
	mesh, err := nocmap.NewMesh(app.W, app.H, 1e9)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := nocmap.NewProblem(app.Graph, mesh)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nocmap.Solve(context.Background(), problem,
		nocmap.WithAlgorithm("greedy-only"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s cost: %.0f\n", res.Algorithm, res.Cost.Comm)
	// Output:
	// greedy-only cost: 4011
}

// ExampleProblem_marshalJSON shows a problem traveling as JSON and
// solving identically on the other side.
func ExampleProblem_marshalJSON() {
	app := nocmap.NewCoreGraph("pair")
	app.Connect("a", "b", 100)
	mesh, err := nocmap.NewMesh(2, 1, 500)
	if err != nil {
		log.Fatal(err)
	}
	problem, err := nocmap.NewProblem(app, mesh)
	if err != nil {
		log.Fatal(err)
	}
	wire, err := json.Marshal(problem)
	if err != nil {
		log.Fatal(err)
	}
	var back nocmap.Problem
	if err := json.Unmarshal(wire, &back); err != nil {
		log.Fatal(err)
	}
	res, err := nocmap.Solve(context.Background(), &back)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cores %v on nodes %v\n", res.Cores, res.Assignment)
	// Output:
	// cores [a b] on nodes [0 1]
}
