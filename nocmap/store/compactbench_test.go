package store

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"testing"
	"time"
)

// storeBenchResult is one recorded run of the append-during-compaction
// benchmark — the BENCH.json "store" section entry format, owned by
// this test the way cmd/nocmapload owns "service".
type storeBenchResult struct {
	Name      string `json:"name"`
	Timestamp string `json:"timestamp,omitempty"`
	// Records is the snapshot volume the compactor streamed; Appends
	// the number of single-op appends measured in each phase.
	Records int `json:"records"`
	Appends int `json:"appends"`
	// CompactionMs is how long the forced pass ran — the window the
	// "during" phase was measured inside.
	CompactionMs float64 `json:"compaction_ms"`
	// Single-op append latency percentiles, microseconds: first with
	// the compactor idle, then while the pass streamed the snapshot.
	BaselineP50Us float64 `json:"baseline_p50_us"`
	BaselineP99Us float64 `json:"baseline_p99_us"`
	DuringP50Us   float64 `json:"during_p50_us"`
	DuringP99Us   float64 `json:"during_p99_us"`
	// RatioP99 = DuringP99Us / BaselineP99Us — the gate holds it ≤ 2.
	RatioP99 float64 `json:"ratio_p99"`
}

// storeBenchFile mirrors cmd/benchjson's BENCH.json layout field for
// field; every section except "store" is carried through as raw JSON.
type storeBenchFile struct {
	GoVersion  json.RawMessage    `json:"go_version,omitempty"`
	GOMAXPROCS json.RawMessage    `json:"gomaxprocs,omitempty"`
	Benchtime  json.RawMessage    `json:"benchtime,omitempty"`
	Pattern    json.RawMessage    `json:"pattern,omitempty"`
	Results    json.RawMessage    `json:"results,omitempty"`
	Service    json.RawMessage    `json:"service,omitempty"`
	Store      []storeBenchResult `json:"store,omitempty"`
}

func usPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TestAppendLatencyDuringCompaction is the large-volume store
// benchmark (make bench-store-compact): it seeds a big state, forces a
// throttled compaction pass that streams the whole snapshot over a
// multi-second window, and measures single-op append latency while the
// pass runs. The off-writer-path design's acceptance gate: p99 append
// latency during compaction within 2x the no-compaction baseline —
// under the old design the full snapshot write ran under fs.mu and the
// "during" p99 was the entire compaction duration. With
// STORE_BENCH_OUT=<path> it scales up and records the run into that
// BENCH.json's "store" section.
func TestAppendLatencyDuringCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("store bench skipped in -short")
	}
	out := os.Getenv("STORE_BENCH_OUT")
	// time.Sleep granularity inflates the per-record throttle by tens
	// of microseconds, so the pass duration is bounded below, not
	// exactly records*throttle.
	records, appends := 1500, 400
	throttle := 5 * time.Microsecond
	minPass := 60 * time.Millisecond
	if out != "" {
		records, appends = 8000, 1500
		throttle = 200 * time.Microsecond // genuinely multi-second pass
		minPass = 2 * time.Second
	}

	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 1 << 30, CompactBytes: 1 << 60})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	// Seed the volume the compactor will have to stream.
	pad := `{"pad":"` + strings.Repeat("x", 160) + `"}`
	seed := make([]Op, 0, 256)
	for i := 0; i < records; i++ {
		r := irec(fmt.Sprintf("seed-%06d", i), uint64(i+1), pad)
		r2 := r
		seed = append(seed, Op{Kind: OpPutJob, Rec: &r2})
		if len(seed) == 256 || i == records-1 {
			if err := fs.ApplyOps(seed); err != nil {
				t.Fatal(err)
			}
			seed = seed[:0]
		}
	}

	measure := func(phase string, n int) []float64 {
		lats := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			rec := irec(fmt.Sprintf("bench-%s", phase), uint64(i+1), `{"r":1}`)
			start := time.Now()
			if err := fs.PutJob(rec); err != nil {
				t.Fatalf("%s append %d: %v", phase, i, err)
			}
			lats = append(lats, float64(time.Since(start).Microseconds()))
		}
		sort.Float64s(lats)
		return lats
	}

	// Phase 1: baseline, compactor idle.
	base := measure("base", appends)

	// Phase 2: force one throttled pass and append while it runs.
	began := make(chan struct{})
	fs.compactThrottle = func() { time.Sleep(throttle) }
	fs.compactHook = func(step string) {
		if step == "begin" {
			close(began)
		}
	}
	fs.mu.Lock()
	if err := fs.rotateLocked(); err != nil {
		fs.mu.Unlock()
		t.Fatal(err)
	}
	fs.kickCompactorLocked()
	fs.mu.Unlock()
	select {
	case <-began:
	case <-time.After(10 * time.Second):
		t.Fatal("forced compaction never started")
	}

	passStart := time.Now()
	var during []float64
	for i := 0; ; i++ {
		st := fs.CompactionStats()
		if !st.Running {
			break
		}
		rec := irec("bench-during", uint64(i+1), `{"r":1}`)
		start := time.Now()
		if err := fs.PutJob(rec); err != nil {
			t.Fatalf("during append %d: %v", i, err)
		}
		if fs.CompactionStats().Running { // attribute only fully-inside samples
			during = append(during, float64(time.Since(start).Microseconds()))
		}
	}
	passMs := float64(time.Since(passStart).Milliseconds())
	if st := fs.CompactionStats(); st.Errors != 0 {
		t.Fatalf("forced compaction failed: %+v", st)
	}
	if passMs < float64(minPass.Milliseconds()) {
		t.Fatalf("compaction pass took %.0fms, want >= %v — the throttle did not bite", passMs, minPass)
	}
	if len(during) < 50 {
		t.Fatalf("only %d appends landed inside the pass — window too small to judge", len(during))
	}
	sort.Float64s(during)

	baseP50, baseP99 := usPercentile(base, 0.50), usPercentile(base, 0.99)
	durP50, durP99 := usPercentile(during, 0.50), usPercentile(during, 0.99)
	ratio := durP99 / baseP99
	t.Logf("records=%d pass=%.0fms base p50/p99 = %.0f/%.0f us, during p50/p99 = %.0f/%.0f us (x%.2f, %d samples)",
		records, passMs, baseP50, baseP99, durP50, durP99, ratio, len(during))

	// The acceptance gate, with a small absolute floor so microsecond
	// scheduler noise cannot flake a run whose baseline is tiny.
	limit := 2 * baseP99
	if floor := baseP99 + 1500; limit < floor {
		limit = floor
	}
	if durP99 > limit {
		t.Fatalf("p99 append during compaction = %.0fus vs %.0fus baseline (x%.2f) — appends are stalling behind snapshot IO",
			durP99, baseP99, ratio)
	}

	if out == "" {
		return
	}
	res := storeBenchResult{
		Name:          "append-during-compaction",
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		Records:       records,
		Appends:       len(during),
		CompactionMs:  passMs,
		BaselineP50Us: baseP50,
		BaselineP99Us: baseP99,
		DuringP50Us:   durP50,
		DuringP99Us:   durP99,
		RatioP99:      math.Round(ratio*100) / 100,
	}
	if err := appendStoreBenchResult(out, res, 12); err != nil {
		t.Fatalf("recording %s: %v", out, err)
	}
	t.Logf("recorded store bench into %s", out)
}

// appendStoreBenchResult records one run into path's "store" section,
// carrying every other BENCH.json section through untouched and
// pruning each name's history to the newest keep entries.
func appendStoreBenchResult(path string, res storeBenchResult, keep int) error {
	bf := &storeBenchFile{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, bf); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	bf.Store = append(bf.Store, res)
	if keep > 0 {
		count := make(map[string]int)
		for _, e := range bf.Store {
			count[e.Name]++
		}
		pruned := bf.Store[:0]
		for _, e := range bf.Store {
			if count[e.Name] > keep {
				count[e.Name]--
				continue
			}
			pruned = append(pruned, e)
		}
		bf.Store = pruned
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
