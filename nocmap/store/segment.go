package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The WAL is a sequence of segment files, wal.000001.jsonl onward. The
// highest-numbered segment is active (open for append); everything
// below it is sealed — immutable, awaiting the compactor. Rotation
// (sealing the active segment and opening the next) is a handful of
// metadata syscalls under fs.mu; folding sealed segments into the
// snapshot is the compactor goroutine's job and never touches the
// append path.
const (
	segmentPrefix = "wal."
	segmentSuffix = ".jsonl"

	snapshotFile    = "snapshot.json"
	snapshotTmpFile = snapshotFile + ".tmp"

	// legacyWALFile is the pre-segment single-file WAL; Open migrates it
	// to segment 1 so old stores keep working.
	legacyWALFile = "wal.jsonl"
)

// segmentName formats the on-disk name of segment seq.
func segmentName(seq uint64) string {
	return fmt.Sprintf("%s%06d%s", segmentPrefix, seq, segmentSuffix)
}

// parseSegmentName extracts the sequence number from a segment file
// name, or ok=false for any other name (including the legacy WAL).
func parseSegmentName(name string) (uint64, bool) {
	body, ok := strings.CutPrefix(name, segmentPrefix)
	if !ok {
		return 0, false
	}
	body, ok = strings.CutSuffix(body, segmentSuffix)
	if !ok || body == "" {
		return 0, false
	}
	for _, c := range body {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	seq, err := strconv.ParseUint(body, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// listSegments returns the sequence numbers of every segment file in
// dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, k int) bool { return seqs[i] < seqs[k] })
	return seqs, nil
}

// replaySegment applies one segment file to state, line by line, and
// returns how many ops it held and the offset of the last whole line's
// end. active marks the segment that was open for appending when the
// process last stopped: only there may the final line be torn (the
// signature of a crash mid-append) — it is skipped and the caller
// truncates it away. Anywhere else, an undecodable line is real
// corruption and fails loudly instead of silently discarding the
// records behind it. pace, when non-nil, is called once per applied op
// so a compaction-pass caller can keep the decode from monopolizing a
// CPU (Open replays flat out and passes nil).
func replaySegment(path string, state *memState, active bool, pace func()) (ops int, good int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: opening wal segment: %w", err)
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 64<<10) // no line-length cap: ReadBytes grows
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == io.EOF {
			if len(bytes.TrimSpace(line)) > 0 {
				if !active {
					return ops, good, fmt.Errorf("store: sealed wal segment %s ends mid-line (not the active tail)", filepath.Base(path))
				}
				return ops, good, nil // unterminated tail: torn mid-append
			}
			good += int64(len(line))
			return ops, good, nil
		}
		if rerr != nil {
			return ops, good, fmt.Errorf("store: reading wal segment: %w", rerr)
		}
		advance := int64(len(line))
		if len(bytes.TrimSpace(line)) == 0 {
			good += advance
			continue
		}
		var op walOp
		if uerr := json.Unmarshal(line, &op); uerr != nil {
			if _, peekErr := r.Peek(1); peekErr == io.EOF && active {
				return ops, good, nil // torn final line
			}
			return ops, good, fmt.Errorf("store: corrupt wal line at %s offset %d (not the torn tail): %w", filepath.Base(path), good, uerr)
		}
		if aerr := state.apply(op); aerr != nil {
			if _, peekErr := r.Peek(1); peekErr == io.EOF && active {
				return ops, good, nil
			}
			return ops, good, fmt.Errorf("store: invalid wal op at %s offset %d (not the torn tail): %w", filepath.Base(path), good, aerr)
		}
		ops++
		good += advance
		if pace != nil {
			pace()
		}
	}
}

// readSnapshot streams snapshot.json into state and returns the
// highest WAL segment the snapshot has folded (its wal_seq field; 0
// for a missing file or a pre-segment snapshot). The decode is
// token-streamed — one record in memory at a time, never the whole
// multi-GB document in one buffer. pace, when non-nil, runs once per
// decoded record (see replaySegment).
func readSnapshot(path string, state *memState, pace func()) (walSeq uint64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: reading snapshot: %w", err)
	}
	defer f.Close()

	dec := json.NewDecoder(bufio.NewReaderSize(f, 256<<10))
	if err := expectDelim(dec, '{'); err != nil {
		return 0, fmt.Errorf("store: parsing snapshot: %w", err)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return 0, fmt.Errorf("store: parsing snapshot: %w", err)
		}
		key, _ := keyTok.(string)
		switch key {
		case "wal_seq":
			var seq uint64
			if err := dec.Decode(&seq); err != nil {
				return 0, fmt.Errorf("store: parsing snapshot wal_seq: %w", err)
			}
			walSeq = seq
		case "jobs":
			err = decodeArray(dec, func() error {
				var rec JobRecord
				if err := dec.Decode(&rec); err != nil {
					return err
				}
				state.putJob(rec)
				if pace != nil {
					pace()
				}
				return nil
			})
		case "cache":
			err = decodeArray(dec, func() error {
				var entry CacheEntry
				if err := dec.Decode(&entry); err != nil {
					return err
				}
				state.putCache(entry.Key, entry.Result)
				if pace != nil {
					pace()
				}
				return nil
			})
		case "replicas":
			err = decodeArray(dec, func() error {
				var rec JobRecord
				if err := dec.Decode(&rec); err != nil {
					return err
				}
				state.putReplica(rec)
				if pace != nil {
					pace()
				}
				return nil
			})
		default:
			var skip json.RawMessage
			err = dec.Decode(&skip)
		}
		if err != nil {
			return 0, fmt.Errorf("store: parsing snapshot %q section: %w", key, err)
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return 0, fmt.Errorf("store: parsing snapshot: %w", err)
	}
	return walSeq, nil
}

// expectDelim consumes one token and checks it is the given delimiter.
func expectDelim(dec *json.Decoder, want rune) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || rune(d) != want {
		return fmt.Errorf("unexpected token %v (want %q)", tok, want)
	}
	return nil
}

// decodeArray consumes a JSON array (or a bare null), calling elem once
// per element with the decoder positioned at it.
func decodeArray(dec *json.Decoder, elem func() error) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if tok == nil {
		return nil // null section: an empty pre-segment snapshot
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return fmt.Errorf("unexpected token %v (want array)", tok)
	}
	for dec.More() {
		if err := elem(); err != nil {
			return err
		}
	}
	return expectDelim(dec, ']')
}

// snapshotWriter streams one snapshot document to w: the wal_seq
// coverage watermark first, then each section as a JSON array written
// record by record — the encoder never holds more than one record (plus
// the bufio window) in memory, however large the state.
type snapshotWriter struct {
	w     *bufio.Writer
	err   error
	first bool
}

func newSnapshotWriter(w io.Writer, walSeq uint64) *snapshotWriter {
	sw := &snapshotWriter{w: bufio.NewWriterSize(w, 256<<10)}
	fmt.Fprintf(sw.w, `{"wal_seq":%d`, walSeq)
	return sw
}

func (sw *snapshotWriter) section(name string) {
	if sw.err != nil {
		return
	}
	_, sw.err = fmt.Fprintf(sw.w, `,%q:[`, name)
	sw.first = true
}

func (sw *snapshotWriter) endSection() {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.WriteString("]")
}

func (sw *snapshotWriter) record(v any) {
	if sw.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		sw.err = err
		return
	}
	if !sw.first {
		if sw.err = sw.w.WriteByte(','); sw.err != nil {
			return
		}
	}
	sw.first = false
	if sw.err = sw.w.WriteByte('\n'); sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(data)
}

// close finishes the document and flushes the buffer.
func (sw *snapshotWriter) close() error {
	if sw.err == nil {
		_, sw.err = sw.w.WriteString("}\n")
	}
	if sw.err == nil {
		sw.err = sw.w.Flush()
	}
	return sw.err
}

// writeSnapshot streams state to path (created fresh) with walSeq as
// the coverage watermark, fsyncs it and closes it. throttle, when
// non-nil, is called once per record — the bench and crash suites use
// it to stretch a compaction over a controlled wall-clock window.
func writeSnapshot(path string, walSeq uint64, state *memState, throttle func()) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	sw := newSnapshotWriter(f, walSeq)
	emit := func(v any) {
		sw.record(v)
		if throttle != nil {
			throttle()
		}
	}
	sw.section("jobs")
	for _, id := range state.jobOrder {
		emit(state.jobs[id])
	}
	sw.endSection()
	sw.section("cache")
	for _, key := range state.cacheOrder {
		entry := state.cache[key]
		emit(CacheEntry{Key: key, Result: entry.Result})
	}
	sw.endSection()
	sw.section("replicas")
	for _, id := range state.replicaOrder {
		emit(state.replicas[id])
	}
	sw.endSection()
	if err := sw.close(); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, persisting renames, creates and deletes
// that happened inside it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
