package store

import "encoding/json"

// Job states a record can carry. They mirror the nocmap/server job
// lifecycle; the store itself only distinguishes terminal from live
// (Terminal) when deciding what a reboot should re-enqueue.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether a state is final: terminal records are
// replayed as history, live ones are re-enqueued on boot.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// JobRecord is the persisted form of one job: enough to answer status
// queries after a restart (terminal records) and to re-run work that a
// crash interrupted (queued/running records, which keep the canonical
// problem JSON and the normalized solve options).
type JobRecord struct {
	ID string `json:"id"`
	// Key is the canonical problem+options hash the server routes,
	// caches and coalesces by.
	Key string `json:"key,omitempty"`
	// Problem is the canonical problem JSON (the server's re-marshaled
	// parse, so formatting differences are already washed out).
	Problem json.RawMessage `json:"problem,omitempty"`
	// Spec is the normalized solve options (server.SolveSpec) as JSON.
	Spec  json.RawMessage `json:"spec,omitempty"`
	State string          `json:"state"`
	// CacheHit and Coalesced mirror the job's wire-status flags so a
	// restored status answers byte-identical to the pre-crash one, flags
	// included.
	CacheHit  bool `json:"cache_hit,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Result carries the marshaled nocmap.Result of a finished job,
	// byte-identical to what the pre-restart server answered.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries the marshaled server.ErrorPayload of a failed or
	// cancelled job.
	Error json.RawMessage `json:"error,omitempty"`
	// Seq is the terminal-transition sequence number: strictly
	// increasing in the order jobs finished, zero while a job is live.
	// Retention eviction and restart replay both order by it, so a
	// replayed store can never resurrect a job that retention already
	// evicted.
	Seq uint64 `json:"seq,omitempty"`
	// Minted is the writer's ID-counter highwater at the time the
	// record was written. Every deletion of an old record is preceded by
	// a newer record carrying a fresher highwater, so the maximum over
	// surviving records always bounds every ID ever issued — a restarted
	// server resumes past it and can never re-mint an ID, even after
	// retention deleted the numerically-highest records.
	Minted uint64 `json:"minted,omitempty"`
	// Origin is the ID prefix of the backend that owns this record. It
	// is set only on replica records (the replica namespace a follower
	// holds for its ring predecessor), never on a server's own jobs —
	// promotion selects the replicas to adopt by it.
	Origin string `json:"origin,omitempty"`
}

// CacheEntry is one persisted result-cache entry.
type CacheEntry struct {
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result"`
}

// Snapshot is everything a store holds, as loaded at boot: the latest
// record per job (first-put order), the latest cache entry per key
// (oldest write first, so re-inserting in order approximates the
// pre-restart LRU recency), and the replica namespace — records this
// instance holds on behalf of its ring predecessor, kept apart from its
// own jobs so replication survives follower restarts too.
type Snapshot struct {
	Jobs     []JobRecord  `json:"jobs"`
	Cache    []CacheEntry `json:"cache"`
	Replicas []JobRecord  `json:"replicas,omitempty"`
}

// JobStore persists jobs, terminal results and result-cache entries
// across server restarts. Implementations must serialize concurrent
// calls internally; the nocmap/server calls them under its own lock but
// other writers make no such promise. All methods must be safe after
// Close returns an error-free result only for Load.
type JobStore interface {
	// PutJob inserts or overwrites the record for rec.ID.
	PutJob(rec JobRecord) error
	// DeleteJob forgets a job (retention eviction). Deleting an unknown
	// ID is a no-op.
	DeleteJob(id string) error
	// PutCache inserts or refreshes one result-cache entry.
	PutCache(key string, result json.RawMessage) error
	// DeleteCache forgets a cache entry (LRU eviction). Unknown keys are
	// a no-op.
	DeleteCache(key string) error
	// PutReplica inserts or overwrites a record in the replica
	// namespace — state replicated from this instance's ring
	// predecessor, isolated from the instance's own jobs.
	PutReplica(rec JobRecord) error
	// DeleteReplica forgets a replica record. Unknown IDs are a no-op.
	DeleteReplica(id string) error
	// Load returns the store's current contents. The server calls it
	// once at boot, before accepting work.
	Load() (*Snapshot, error)
	// Close releases the store's resources. Further writes may fail.
	Close() error
}

// OpKind names one kind of store mutation. The values match the WAL's
// on-disk op strings so a batched op folds into the same log format as
// the single-shot JobStore methods.
type OpKind string

// The store mutations a batch may carry.
const (
	OpPutJob        OpKind = "job"
	OpDeleteJob     OpKind = "deljob"
	OpPutCache      OpKind = "cache"
	OpDeleteCache   OpKind = "delcache"
	OpPutReplica    OpKind = "replica"
	OpDeleteReplica OpKind = "delreplica"
)

// Op is one store mutation in batch form. Exactly the fields the Kind
// needs are set: Rec for puts of job/replica records, ID for job/replica
// deletes, Key (and Result for puts) for cache operations.
type Op struct {
	Kind   OpKind
	Rec    *JobRecord
	ID     string
	Key    string
	Result json.RawMessage
}

// wal converts a batch op to its WAL form. Callers own validation (the
// walOp validate runs before anything is written).
func (op Op) wal() walOp {
	return walOp{Op: string(op.Kind), Job: op.Rec, ID: op.ID, Key: op.Key, Result: op.Result}
}

// copyOp deep-copies an op so the store may hold it past the call.
func copyOp(op Op) Op {
	if op.Rec != nil {
		r := copyRecord(*op.Rec)
		op.Rec = &r
	}
	op.Result = rawCopy(op.Result)
	return op
}

// BatchStore is the group-commit fast path: a JobStore that can apply
// many mutations under a single durability barrier (one fsync for a
// FileStore). Order within the batch is preserved exactly; on error the
// whole batch is rolled back where the implementation can (FileStore
// truncates to the last whole pre-batch line), so callers may safely
// retry op by op. Implementations must serialize ApplyOps against the
// single-op methods.
type BatchStore interface {
	JobStore
	// ApplyOps applies ops in order under one durability barrier.
	ApplyOps(ops []Op) error
}

// rawCopy deep-copies a raw message so callers may reuse their buffers.
func rawCopy(m json.RawMessage) json.RawMessage {
	if m == nil {
		return nil
	}
	return append(json.RawMessage(nil), m...)
}

func copyRecord(rec JobRecord) JobRecord {
	rec.Problem = rawCopy(rec.Problem)
	rec.Spec = rawCopy(rec.Spec)
	rec.Result = rawCopy(rec.Result)
	rec.Error = rawCopy(rec.Error)
	return rec
}
