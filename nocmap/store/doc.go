// Package store persists nocmapd's job table and result cache across
// restarts.
//
// A JobStore holds three kinds of state: job records (identity, state,
// canonical problem + options for live jobs), terminal outcomes (the
// marshaled result or typed error, byte-identical to what the server
// answered before a restart), and result-cache entries. The
// nocmap/server replays a store at boot — terminal jobs become
// queryable history again, queued and running jobs are re-enqueued and
// solved anew, and the cache is re-warmed.
//
// Two implementations ship: MemStore (in-memory, for tests and
// process-lifetime replay) and FileStore (an fsynced append-only WAL
// compacted into a snapshot, surviving SIGKILL at any instant).
package store
