package store_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/nocmap/store"
)

// traceStore records the exact op sequence the group-commit writer
// settles, batch boundaries included — the probe the ordering tests
// read the "WAL order" from.
type traceStore struct {
	*store.MemStore

	mu      sync.Mutex
	ops     []store.Op
	batches [][]store.Op
	gate    chan struct{} // when set, ApplyOps blocks until it closes
	entered chan struct{} // when set, receives one signal per ApplyOps call
}

func (ts *traceStore) ApplyOps(ops []store.Op) error {
	ts.mu.Lock()
	gate, entered := ts.gate, ts.entered
	ts.mu.Unlock()
	if entered != nil {
		select {
		case entered <- struct{}{}:
		default:
		}
	}
	if gate != nil {
		<-gate
	}
	ts.mu.Lock()
	ts.ops = append(ts.ops, ops...)
	ts.batches = append(ts.batches, append([]store.Op(nil), ops...))
	ts.mu.Unlock()
	return ts.MemStore.ApplyOps(ops)
}

func (ts *traceStore) trace() []store.Op {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]store.Op(nil), ts.ops...)
}

// TestGroupCommitSerialOrder pins the core WAL-order contract: a single
// producer's enqueue order IS the settle order, across however many
// batches the writer cuts it into.
func TestGroupCommitSerialOrder(t *testing.T) {
	inner := &traceStore{MemStore: store.NewMemStore()}
	g := store.NewGroupCommit(inner, store.GroupCommitConfig{MaxBatch: 7})
	const n = 100
	for i := 0; i < n; i++ {
		r := rec(fmt.Sprintf("job-%03d", i), store.StateDone, uint64(i+1))
		if err := g.PutJob(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	ops := inner.trace()
	if len(ops) != n {
		t.Fatalf("settled %d ops, want %d", len(ops), n)
	}
	for i, op := range ops {
		if want := fmt.Sprintf("job-%03d", i); op.Rec == nil || op.Rec.ID != want {
			t.Fatalf("op %d settled out of order: got %+v, want %s", i, op, want)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitConcurrentOrder drives many concurrent producers and
// checks every producer's program order survives into the settle order
// (the batches may interleave producers, but never reorder within one).
func TestGroupCommitConcurrentOrder(t *testing.T) {
	inner := &traceStore{MemStore: store.NewMemStore()}
	g := store.NewGroupCommit(inner, store.GroupCommitConfig{MaxBatch: 16})
	const producers, perProducer = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r := rec(fmt.Sprintf("p%d-%03d", p, i), store.StateDone, uint64(i+1))
				if err := g.PutJob(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	ops := inner.trace()
	if len(ops) != producers*perProducer {
		t.Fatalf("settled %d ops, want %d", len(ops), producers*perProducer)
	}
	next := make([]int, producers)
	for i, op := range ops {
		if op.Rec == nil {
			t.Fatalf("op %d has no record", i)
		}
		var p, seq int
		if _, err := fmt.Sscanf(op.Rec.ID, "p%d-%d", &p, &seq); err != nil {
			t.Fatalf("op %d: unparseable id %q", i, op.Rec.ID)
		}
		if seq != next[p] {
			t.Fatalf("producer %d reordered: settled %03d, expected %03d (settle index %d)",
				p, seq, next[p], i)
		}
		next[p]++
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitBatches proves group commit actually groups: with the
// inner store gated shut while producers enqueue, releasing the gate
// must settle the backlog in far fewer barriers than ops.
func TestGroupCommitBatches(t *testing.T) {
	inner := &traceStore{MemStore: store.NewMemStore(), gate: make(chan struct{})}
	g := store.NewGroupCommit(inner, store.GroupCommitConfig{QueueSize: 512})
	const n = 200
	// First op wakes the writer, which parks on the gate inside ApplyOps;
	// everything after accumulates in the queue behind it.
	for i := 0; i < n; i++ {
		if err := g.PutJob(rec(fmt.Sprintf("job-%03d", i), store.StateDone, 1)); err != nil {
			t.Fatal(err)
		}
	}
	close(inner.gate)
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Ops != n {
		t.Fatalf("Stats.Ops = %d, want %d", st.Ops, n)
	}
	if st.Batches >= n/4 {
		t.Fatalf("writer paid %d barriers for %d ops — not batching", st.Batches, n)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, expected a multi-op batch", st.MaxBatch)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitWatermarkAndSync pins the durability accounting: an
// enqueued op is not durable until settled, Sync is the barrier between
// the two, and after Sync the watermarks agree.
func TestGroupCommitWatermarkAndSync(t *testing.T) {
	inner := &traceStore{MemStore: store.NewMemStore(), gate: make(chan struct{})}
	g := store.NewGroupCommit(inner, store.GroupCommitConfig{})
	for i := 0; i < 10; i++ {
		if err := g.PutJob(rec(fmt.Sprintf("job-%d", i), store.StateDone, 1)); err != nil {
			t.Fatal(err)
		}
	}
	enq, durable := g.Watermark()
	if enq != 10 {
		t.Fatalf("enqueued = %d, want 10", enq)
	}
	if durable == 10 {
		t.Fatal("all ops durable while the inner store is gated shut")
	}
	// A Sync against the gated store must respect its context.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Sync(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Sync under a gated store = %v, want deadline exceeded", err)
	}
	close(inner.gate)
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	enq, durable = g.Watermark()
	if enq != 10 || durable != 10 {
		t.Fatalf("after Sync: enqueued=%d durable=%d, want 10/10", enq, durable)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitBackpressure pins the bounded-queue contract: with the
// writer stalled and the queue full, the next enqueue blocks until the
// writer drains — it does not grow the queue and does not fail.
func TestGroupCommitBackpressure(t *testing.T) {
	inner := &traceStore{
		MemStore: store.NewMemStore(),
		gate:     make(chan struct{}),
		entered:  make(chan struct{}, 1),
	}
	g := store.NewGroupCommit(inner, store.GroupCommitConfig{QueueSize: 4})
	// Park the writer mid-batch: one op, then wait until it is in the
	// writer's hands (inside the gated ApplyOps), so the queue is empty
	// and the next four ops fill it exactly.
	if err := g.PutJob(rec("job-0", store.StateDone, 1)); err != nil {
		t.Fatal(err)
	}
	<-inner.entered
	for i := 1; i < 5; i++ {
		if err := g.PutJob(rec(fmt.Sprintf("job-%d", i), store.StateDone, 1)); err != nil {
			t.Fatal(err)
		}
	}
	blocked := make(chan error, 1)
	go func() { blocked <- g.PutJob(rec("job-overflow", store.StateDone, 1)) }()
	select {
	case err := <-blocked:
		t.Fatalf("enqueue into a full queue returned (%v) instead of blocking", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(inner.gate) // writer drains; the blocked producer must get through
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue still blocked after the writer drained")
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ops := inner.trace(); len(ops) != 6 {
		t.Fatalf("settled %d ops, want 6", len(ops))
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitFailureIsolation pins the batch-failure path: when a
// batch barrier fails, the writer retries op by op, reports each bad op
// through OnError, and Sync still settles (durability answers "settled",
// Failed carries the bad news).
func TestGroupCommitFailureIsolation(t *testing.T) {
	fault := store.NewFaultStore(store.NewMemStore())
	g := store.NewGroupCommit(fault, store.GroupCommitConfig{})
	var mu sync.Mutex
	var failedIDs []string
	g.SetOnError(func(op store.Op, err error) {
		mu.Lock()
		defer mu.Unlock()
		if op.Rec != nil {
			failedIDs = append(failedIDs, op.Rec.ID)
		}
	})
	if err := g.PutJob(rec("job-ok", store.StateDone, 1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Fail the batch barrier AND the first per-op retry: job-bad is lost,
	// the op behind it in the same batch must still land.
	fault.FailNext(2)
	if err := g.ApplyOps([]store.Op{
		{Kind: store.OpPutJob, Rec: &store.JobRecord{ID: "job-bad", State: store.StateDone}},
		{Kind: store.OpPutJob, Rec: &store.JobRecord{ID: "job-behind", State: store.StateDone}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := g.Failed(); got != 1 {
		t.Fatalf("Failed() = %d, want 1", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(failedIDs) != 1 || failedIDs[0] != "job-bad" {
		t.Fatalf("OnError saw %v, want [job-bad]", failedIDs)
	}
	snap, err := g.Load()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, j := range snap.Jobs {
		ids = append(ids, j.ID)
	}
	sort.Strings(ids)
	if strings.Join(ids, ",") != "job-behind,job-ok" {
		t.Fatalf("snapshot jobs = %v, want job-behind and job-ok", ids)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCrashPrefix is the SIGKILL-mid-batch property: after a
// crash, the reopened store holds a strict PREFIX of the write order —
// everything Sync acked, possibly a few settled-but-unacked writes
// behind it, and never a hole. The crash is simulated the same way the
// FileStore torn-tail test does it: a half-written batch tail appended
// straight to the WAL.
func TestGroupCommitCrashPrefix(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := store.NewGroupCommit(fs, store.GroupCommitConfig{MaxBatch: 8})
	const acked = 40
	for i := 0; i < acked; i++ {
		if err := g.PutJob(rec(fmt.Sprintf("job-%03d", i), store.StateDone, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// The durability barrier: everything before this is acked.
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// SIGKILL mid-batch: the next group commit tore halfway through its
	// WAL append.
	wal := activeSegment(t, dir)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"job","job":{"id":"job-040","state":"done"}}` + "\n" +
		`{"op":"job","job":{"id":"job-041","st`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	again, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen after mid-batch crash: %v", err)
	}
	defer again.Close()
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) < acked {
		t.Fatalf("recovered %d jobs, acked %d — acked writes lost", len(snap.Jobs), acked)
	}
	// Prefix property: job IDs must be exactly 0..len-1, no holes.
	seen := make(map[int]bool)
	for _, j := range snap.Jobs {
		n, err := strconv.Atoi(strings.TrimPrefix(j.ID, "job-"))
		if err != nil {
			t.Fatalf("unexpected job id %q", j.ID)
		}
		seen[n] = true
	}
	for i := 0; i < len(snap.Jobs); i++ {
		if !seen[i] {
			t.Fatalf("recovered set has a hole at %d: %d jobs recovered", i, len(snap.Jobs))
		}
	}
}

// TestGroupCommitTornBatch reuses the FaultStore torn-write hook at
// batch granularity: the barrier reports failure but the batch reached
// the disk. The writer's per-op retry then re-applies the batch — replay
// idempotency absorbs the duplicates, and no op is lost or reordered.
func TestGroupCommitTornBatch(t *testing.T) {
	mem := store.NewMemStore()
	fault := store.NewFaultStore(mem)
	fault.SetTorn(true)
	g := store.NewGroupCommit(fault, store.GroupCommitConfig{})
	fault.FailNext(1) // the first barrier tears: applied, then "ack lost"
	if err := g.ApplyOps([]store.Op{
		{Kind: store.OpPutJob, Rec: &store.JobRecord{ID: "job-a", State: store.StateDone, Seq: 1}},
		{Kind: store.OpPutJob, Rec: &store.JobRecord{ID: "job-b", State: store.StateDone, Seq: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := g.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 2 {
		t.Fatalf("torn batch lost records: %+v", snap.Jobs)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCloseDrains pins the shutdown contract: Close returns
// only after everything enqueued is durable on the inner store, and
// enqueues after Close fail.
func TestGroupCommitCloseDrains(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := store.NewGroupCommit(fs, store.GroupCommitConfig{})
	for i := 0; i < 50; i++ {
		if err := g.PutJob(rec(fmt.Sprintf("job-%02d", i), store.StateDone, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.PutJob(rec("job-late", store.StateDone, 1)); err == nil {
		t.Fatal("PutJob after Close must fail")
	}
	again, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 50 {
		t.Fatalf("reopen found %d jobs, want 50 — Close returned before the drain", len(snap.Jobs))
	}
}
