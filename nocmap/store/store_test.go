package store_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/nocmap/store"
)

// stores runs a subtest against both implementations so their semantics
// cannot drift.
func stores(t *testing.T, run func(t *testing.T, open func(t *testing.T) store.JobStore)) {
	t.Run("mem", func(t *testing.T) {
		run(t, func(t *testing.T) store.JobStore { return store.NewMemStore() })
	})
	t.Run("file", func(t *testing.T) {
		dir := t.TempDir()
		run(t, func(t *testing.T) store.JobStore {
			fs, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			return fs
		})
	})
}

// activeSegment returns the path of the highest-numbered WAL segment —
// the one that was open for appends when the store last closed.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal.*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments in %s (err=%v)", dir, err)
	}
	return segs[len(segs)-1] // zero-padded names: lexical order is numeric order
}

func rec(id, state string, seq uint64) store.JobRecord {
	return store.JobRecord{
		ID:      id,
		Key:     "key-" + id,
		Problem: json.RawMessage(`{"app":{}}`),
		Spec:    json.RawMessage(`{"algorithm":"nmap-single"}`),
		State:   state,
		Seq:     seq,
	}
}

func TestPutLoadRoundTrip(t *testing.T) {
	stores(t, func(t *testing.T, open func(t *testing.T) store.JobStore) {
		s := open(t)
		defer s.Close()
		done := rec("job-1", store.StateDone, 1)
		done.Result = json.RawMessage(`{"feasible":true}`)
		for _, r := range []store.JobRecord{done, rec("job-2", store.StateQueued, 0)} {
			if err := s.PutJob(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.PutCache("cache-a", json.RawMessage(`{"r":1}`)); err != nil {
			t.Fatal(err)
		}
		snap, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Jobs) != 2 || len(snap.Cache) != 1 {
			t.Fatalf("snapshot = %d jobs, %d cache entries; want 2, 1", len(snap.Jobs), len(snap.Cache))
		}
		if snap.Jobs[0].ID != "job-1" || !bytes.Equal(snap.Jobs[0].Result, done.Result) {
			t.Fatalf("job-1 did not round trip: %+v", snap.Jobs[0])
		}
		if snap.Jobs[1].State != store.StateQueued {
			t.Fatalf("job-2 state = %q", snap.Jobs[1].State)
		}
	})
}

func TestOverwriteAndDelete(t *testing.T) {
	stores(t, func(t *testing.T, open func(t *testing.T) store.JobStore) {
		s := open(t)
		defer s.Close()
		if err := s.PutJob(rec("job-1", store.StateQueued, 0)); err != nil {
			t.Fatal(err)
		}
		finished := rec("job-1", store.StateDone, 7)
		if err := s.PutJob(finished); err != nil {
			t.Fatal(err)
		}
		if err := s.PutJob(rec("job-2", store.StateDone, 8)); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteJob("job-2"); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteJob("missing"); err != nil {
			t.Fatal(err)
		}
		if err := s.PutCache("k", json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteCache("k"); err != nil {
			t.Fatal(err)
		}
		snap, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Jobs) != 1 || snap.Jobs[0].State != store.StateDone || snap.Jobs[0].Seq != 7 {
			t.Fatalf("snapshot jobs = %+v; want the overwritten job-1 alone", snap.Jobs)
		}
		if len(snap.Cache) != 0 {
			t.Fatalf("cache = %+v after delete", snap.Cache)
		}
	})
}

// TestFileStoreReopen is the durability core: everything written before
// a close (or crash) is there after Open.
func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	done := rec("job-1", store.StateDone, 3)
	done.Result = json.RawMessage(`{"assignment":[0,1,2]}`)
	if err := s.PutJob(done); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(rec("job-2", store.StateRunning, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutCache("warm", json.RawMessage(`{"cached":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 2 || len(snap.Cache) != 1 {
		t.Fatalf("reopened snapshot = %d jobs, %d cache entries", len(snap.Jobs), len(snap.Cache))
	}
	if !bytes.Equal(snap.Jobs[0].Result, done.Result) {
		t.Fatalf("result drifted across reopen: %s", snap.Jobs[0].Result)
	}
	if snap.Jobs[1].State != store.StateRunning {
		t.Fatalf("live job state = %q", snap.Jobs[1].State)
	}
}

// TestFileStoreTornTail simulates a SIGKILL mid-append: a torn final
// WAL line must be dropped without losing the records before it.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(rec("job-1", store.StateDone, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal := activeSegment(t, dir)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"job","job":{"id":"job-2","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	again, err := store.Open(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail Open: %v", err)
	}
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != "job-1" {
		t.Fatalf("snapshot after torn tail = %+v; want job-1 alone", snap.Jobs)
	}
	// The truncated WAL must append cleanly again.
	if err := again.PutJob(rec("job-3", store.StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	if err := again.Close(); err != nil {
		t.Fatal(err)
	}
	third, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Close()
	snap, err = third.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 2 {
		t.Fatalf("post-truncation append lost: %+v", snap.Jobs)
	}
}

// TestFileStoreCompaction drives enough churn to trigger snapshotting
// and checks the state survives (snapshot + emptied WAL, then reopen).
func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Churn one job far past the compaction floor: the live state stays
	// tiny, so the 4x rule kicks in as soon as the floor is crossed.
	var last store.JobRecord
	for i := 0; i < 1200; i++ {
		last = rec("job-1", store.StateDone, uint64(i+1))
		last.Result = json.RawMessage(fmt.Sprintf(`{"round":%d}`, i))
		if err := s.PutJob(last); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapInfo, err := os.Stat(filepath.Join(dir, "snapshot.json"))
	if err != nil {
		t.Fatalf("compaction never wrote a snapshot: %v", err)
	}
	if snapInfo.Size() == 0 {
		t.Fatal("snapshot is empty")
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal.*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var walSize int64
	for _, seg := range segs {
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		walSize += info.Size()
	}
	if walSize > 64<<10 {
		t.Fatalf("wal did not shrink at compaction: %d bytes across %d segments", walSize, len(segs))
	}

	again, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || !bytes.Equal(snap.Jobs[0].Result, last.Result) {
		t.Fatalf("compacted state lost the latest record: %+v", snap.Jobs)
	}
}

// TestInvalidOpsNeverReachDisk pins the review fix: a malformed write
// (job without an ID, cache entry without a key) is rejected up front —
// it must not be fsynced into the WAL, where it would poison the next
// replay.
func TestInvalidOpsNeverReachDisk(t *testing.T) {
	stores(t, func(t *testing.T, open func(t *testing.T) store.JobStore) {
		s := open(t)
		defer s.Close()
		if err := s.PutJob(store.JobRecord{State: store.StateQueued}); err == nil {
			t.Fatal("PutJob without an ID must fail")
		}
		if err := s.PutCache("", json.RawMessage(`1`)); err == nil {
			t.Fatal("PutCache without a key must fail")
		}
		if err := s.PutJob(rec("job-1", store.StateQueued, 0)); err != nil {
			t.Fatal(err)
		}
		snap, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Jobs) != 1 || len(snap.Cache) != 0 {
			t.Fatalf("rejected ops leaked into state: %+v", snap)
		}
	})
	// And the durable store must reopen cleanly after the rejections.
	dir := t.TempDir()
	fs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = fs.PutJob(store.JobRecord{State: store.StateQueued}) // rejected
	if err := fs.PutJob(rec("job-1", store.StateDone, 1)); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	again, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopen after rejected writes: %v", err)
	}
	defer again.Close()
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("snapshot = %+v, want the one valid record", snap.Jobs)
	}
}

// TestFileStoreMidLogCorruptionFailsLoudly pins the other half of the
// torn-tail contract: garbage in the *middle* of the WAL is not a torn
// tail — silently truncating there would discard validly fsynced
// records behind it, so Open must refuse instead.
func TestFileStoreMidLogCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(rec("job-1", store.StateDone, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal := activeSegment(t, dir)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte("{garbage\n"), data...)
	if err := os.WriteFile(wal, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Open(dir); err == nil {
		t.Fatal("mid-log corruption must fail Open, not silently truncate valid records")
	}
}

// TestTerminal pins the state classification the server replays by.
func TestTerminal(t *testing.T) {
	for state, want := range map[string]bool{
		store.StateQueued:    false,
		store.StateRunning:   false,
		store.StateDone:      true,
		store.StateFailed:    true,
		store.StateCancelled: true,
	} {
		if got := store.Terminal(state); got != want {
			t.Errorf("Terminal(%q) = %v, want %v", state, got, want)
		}
	}
}
