package store

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// GroupCommitConfig tunes a GroupCommitStore. The zero value picks the
// defaults noted on each field.
type GroupCommitConfig struct {
	// QueueSize bounds the in-memory commit queue. Enqueues block
	// (backpressure) once the queue is full, so a stalled disk slows
	// producers down instead of growing memory without bound.
	// Default 4096.
	QueueSize int
	// MaxBatch caps how many ops the writer folds into one durability
	// barrier (one fsync on a FileStore). Default 1024.
	MaxBatch int
	// FlushInterval is an optional accumulation delay: after waking on a
	// non-empty queue the writer waits this long before draining, trading
	// latency for larger batches. Zero (the default) drains immediately —
	// batches then form naturally out of whatever arrived while the
	// previous fsync was in flight. Tests raise it to force many writes
	// into one deterministic batch.
	FlushInterval time.Duration
	// OnError, when set, is called once per op that failed to apply —
	// from the writer goroutine, with no store lock held. This is how
	// the server learns which records are dirty on disk and must be
	// re-persisted before a durability watermark may vouch for them.
	OnError func(op Op, err error)
}

// GroupCommitStats is a point-in-time snapshot of the writer's work.
type GroupCommitStats struct {
	// Batches is how many durability barriers (fsyncs on a FileStore)
	// the writer has paid.
	Batches uint64
	// Ops is how many operations those batches carried.
	Ops uint64
	// Failed counts ops whose apply returned an error.
	Failed uint64
	// MaxBatch is the largest single batch so far.
	MaxBatch int
	// Pending is the current queue depth.
	Pending int
}

// gcWaiter is one Sync caller parked until the writer has applied
// everything enqueued before the call.
type gcWaiter struct {
	target uint64
	ch     chan struct{}
}

// GroupCommitStore is the ordered async WAL writer: JobStore mutations
// enqueue into a bounded in-memory commit queue and return immediately;
// a single writer goroutine drains the queue in strict FIFO order,
// batching many ops per durability barrier (BatchStore.ApplyOps — one
// fsync on a FileStore) so N terminal transitions cost one fsync, not N.
//
// The price of asynchrony is an honest watermark: an enqueued op is NOT
// durable until the writer has applied it. Watermark exposes both
// counters, and Sync blocks until everything enqueued before the call is
// persisted — the hook the server's "replicated" durability class and
// replication acked-watermarks key off, so an ack can never vouch for a
// record that is still sitting in the queue.
//
// Ordering guarantees: ops enqueue under one mutex, so the WAL order is
// exactly the enqueue order; a batch handed to ApplyOps lands
// contiguously. On a batch failure the writer re-applies the batch op by
// op (the inner store rolled the whole batch back), isolating the
// failing op(s) and reporting each through OnError; failed ops still
// advance the applied watermark — Sync means "settled", and Failed()
// plus OnError carry the bad news.
type GroupCommitStore struct {
	inner JobStore
	cfg   GroupCommitConfig

	mu       sync.Mutex
	cond     *sync.Cond // queue-not-full (enqueuers) and queue-drained (Close)
	queue    []Op
	enq      uint64 // ops ever enqueued
	applied  uint64 // ops the writer has settled (durable on the inner store unless failed)
	failed   uint64 // ops whose apply errored
	batches  uint64
	maxBatch int
	waiters  []gcWaiter
	closed   bool
	onErr    func(Op, error)

	writerDone chan struct{}
}

// NewGroupCommit wraps inner with the async group-commit writer and
// starts its writer goroutine. Close drains the queue and closes inner.
func NewGroupCommit(inner JobStore, cfg GroupCommitConfig) *GroupCommitStore {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4096
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	g := &GroupCommitStore{inner: inner, cfg: cfg, onErr: cfg.OnError, writerDone: make(chan struct{})}
	g.cond = sync.NewCond(&g.mu)
	go g.writer()
	return g
}

// SetOnError replaces the per-op failure callback (see
// GroupCommitConfig.OnError). The server uses it to wire an
// already-constructed store into its own error accounting.
func (g *GroupCommitStore) SetOnError(fn func(Op, error)) {
	g.mu.Lock()
	g.onErr = fn
	g.mu.Unlock()
}

// enqueue appends ops to the commit queue as one atomic block,
// blocking while the queue is full. A block larger than the whole
// queue is admitted once the queue is empty — it simply becomes an
// oversized batch — so callers can never deadlock on their own batch.
func (g *GroupCommitStore) enqueue(ops ...Op) error {
	if len(ops) == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.closed && len(g.queue) > 0 && len(g.queue)+len(ops) > g.cfg.QueueSize {
		g.cond.Wait()
	}
	if g.closed {
		return fmt.Errorf("store: closed")
	}
	for _, op := range ops {
		g.queue = append(g.queue, copyOp(op))
	}
	g.enq += uint64(len(ops))
	g.cond.Broadcast() // wake the writer
	return nil
}

// writer is the single goroutine that owns the inner store's write
// path. It drains the queue in FIFO order, MaxBatch ops at a time,
// applying each batch outside the store lock.
func (g *GroupCommitStore) writer() {
	defer close(g.writerDone)
	for {
		g.mu.Lock()
		for len(g.queue) == 0 && !g.closed {
			g.cond.Wait()
		}
		if len(g.queue) == 0 && g.closed {
			g.mu.Unlock()
			return
		}
		if g.cfg.FlushInterval > 0 {
			// Accumulate: give concurrent producers a window to join this
			// batch before the barrier is paid.
			g.mu.Unlock()
			time.Sleep(g.cfg.FlushInterval)
			g.mu.Lock()
		}
		n := len(g.queue)
		if n > g.cfg.MaxBatch {
			n = g.cfg.MaxBatch
		}
		batch := make([]Op, n)
		copy(batch, g.queue[:n])
		g.queue = append(g.queue[:0], g.queue[n:]...)
		// Taking the batch freed queue space: wake blocked enqueuers now,
		// not after the fsync — backpressure bounds memory (queue plus one
		// in-flight batch), it does not serialize producers behind the disk.
		g.cond.Broadcast()
		g.mu.Unlock()

		failed := g.apply(batch)

		g.mu.Lock()
		g.applied += uint64(n)
		g.failed += failed
		g.batches++
		if n > g.maxBatch {
			g.maxBatch = n
		}
		rest := g.waiters[:0]
		for _, w := range g.waiters {
			if w.target <= g.applied {
				close(w.ch)
			} else {
				rest = append(rest, w)
			}
		}
		g.waiters = rest
		g.cond.Broadcast() // wake blocked enqueuers and Close
		g.mu.Unlock()
	}
}

// apply settles one batch against the inner store and returns how many
// ops failed. The batch fast path is tried first; on error the inner
// store has rolled the whole batch back (FileStore truncates to the
// pre-batch boundary), so the ops are retried one by one to isolate the
// failure instead of condemning the whole batch.
func (g *GroupCommitStore) apply(batch []Op) (failed uint64) {
	if bs, ok := g.inner.(BatchStore); ok {
		if err := bs.ApplyOps(batch); err == nil {
			return 0
		}
	}
	g.mu.Lock()
	onErr := g.onErr
	g.mu.Unlock()
	for _, op := range batch {
		if err := ApplyOp(g.inner, op); err != nil {
			failed++
			if onErr != nil {
				onErr(op, err)
			}
		}
	}
	return failed
}

// PutJob implements JobStore: the record is queued for the writer and
// the call returns before it is durable. Use Sync to wait for disk.
func (g *GroupCommitStore) PutJob(rec JobRecord) error {
	return g.enqueue(Op{Kind: OpPutJob, Rec: &rec})
}

// DeleteJob implements JobStore.
func (g *GroupCommitStore) DeleteJob(id string) error {
	return g.enqueue(Op{Kind: OpDeleteJob, ID: id})
}

// PutCache implements JobStore.
func (g *GroupCommitStore) PutCache(key string, result json.RawMessage) error {
	return g.enqueue(Op{Kind: OpPutCache, Key: key, Result: result})
}

// DeleteCache implements JobStore.
func (g *GroupCommitStore) DeleteCache(key string) error {
	return g.enqueue(Op{Kind: OpDeleteCache, Key: key})
}

// PutReplica implements JobStore.
func (g *GroupCommitStore) PutReplica(rec JobRecord) error {
	return g.enqueue(Op{Kind: OpPutReplica, Rec: &rec})
}

// DeleteReplica implements JobStore.
func (g *GroupCommitStore) DeleteReplica(id string) error {
	return g.enqueue(Op{Kind: OpDeleteReplica, ID: id})
}

// ApplyOps implements BatchStore: the whole block enqueues atomically,
// so it lands contiguously in the WAL and the writer can settle it
// under one barrier.
func (g *GroupCommitStore) ApplyOps(ops []Op) error {
	return g.enqueue(ops...)
}

// Sync blocks until every operation enqueued before the call has been
// settled by the writer — durable on the inner store, except for ops
// that failed (counted by Failed and reported through OnError). It
// returns early with the context's error if ctx is done first.
func (g *GroupCommitStore) Sync(ctx context.Context) error {
	g.mu.Lock()
	target := g.enq
	if g.applied >= target {
		g.mu.Unlock()
		return nil
	}
	w := gcWaiter{target: target, ch: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.mu.Unlock()
	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Unwrap returns the store this writer settles into, so callers can
// walk a wrapper chain down to the concrete backing store (e.g. the
// server surfacing FileStore compaction stats).
func (g *GroupCommitStore) Unwrap() JobStore { return g.inner }

// Watermark returns the enqueued and durable op counters. durable ==
// enqueued means the queue is fully settled; the gap is the write-behind
// window a crash would lose.
func (g *GroupCommitStore) Watermark() (enqueued, durable uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.enq, g.applied
}

// Failed returns the cumulative count of ops whose apply errored.
// Callers bracket a window with two reads to learn whether anything in
// between went bad.
func (g *GroupCommitStore) Failed() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failed
}

// Stats returns a snapshot of the writer's batching behavior.
func (g *GroupCommitStore) Stats() GroupCommitStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GroupCommitStats{
		Batches:  g.batches,
		Ops:      g.applied,
		Failed:   g.failed,
		MaxBatch: g.maxBatch,
		Pending:  len(g.queue),
	}
}

// Load implements JobStore. The queue is drained first so the snapshot
// reflects every enqueued op.
func (g *GroupCommitStore) Load() (*Snapshot, error) {
	if err := g.Sync(context.Background()); err != nil {
		return nil, err
	}
	return g.inner.Load()
}

// Close drains the queue, stops the writer and closes the inner store.
// Everything enqueued before Close is durable when it returns.
func (g *GroupCommitStore) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		<-g.writerDone
		return nil
	}
	g.closed = true
	g.cond.Broadcast()
	g.mu.Unlock()
	<-g.writerDone
	return g.inner.Close()
}
