package store

import (
	"fmt"
	"os"
	"runtime"
)

// CompactionStats is a point-in-time snapshot of a FileStore's
// compaction machinery — the numbers behind the server's
// compactions / compact_running / segments stats.
type CompactionStats struct {
	// Compactions counts snapshots the compactor has published
	// (tmp-write + fsync + atomic rename) since Open.
	Compactions uint64 `json:"compactions"`
	// Running reports whether a compaction is in flight right now.
	Running bool `json:"running"`
	// Segments is the number of WAL segment files on disk: the active
	// one plus every sealed segment the compactor has not folded and
	// deleted yet.
	Segments int `json:"segments"`
	// PendingOps and PendingBytes measure the WAL since the last
	// published snapshot (sealed + active segments) — the volume the
	// next compaction will fold and the replay cost a reboot would pay.
	PendingOps   int   `json:"pending_ops"`
	PendingBytes int64 `json:"pending_bytes"`
	// Errors counts compaction attempts that failed before publishing
	// (the WAL keeps every op, so a failed compaction loses nothing;
	// the next trigger retries). LastError is the most recent failure,
	// "" when the last attempt succeeded.
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
}

// CompactionStats returns the compaction counters. The store stays
// fully usable while a compaction runs; Running flips back to false
// once the snapshot is published and the folded segments are deleted.
func (fs *FileStore) CompactionStats() CompactionStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return CompactionStats{
		Compactions:  fs.compactions,
		Running:      fs.compacting,
		Segments:     fs.segments,
		PendingOps:   fs.sealedOps + fs.walOps,
		PendingBytes: fs.sealedSize + fs.walSize,
		Errors:       fs.compactErrs,
		LastError:    fs.lastCompactErr,
	}
}

// compactor is the dedicated goroutine that folds sealed WAL segments
// into the snapshot, strictly off the append path: appends and
// ApplyOps batches rotate to a fresh segment (a couple of metadata
// syscalls under fs.mu) and never wait on snapshot IO. One kick = one
// pass; a pass that leaves the trigger still satisfied (the active
// segment grew past it while the pass ran) rotates and re-kicks
// itself.
func (fs *FileStore) compactor() {
	defer close(fs.compactorDone)
	for {
		select {
		case <-fs.quit:
			return
		case <-fs.kick:
		}
		fs.runCompaction()
	}
}

// kickCompactorLocked marks a compaction as claimed and wakes the
// compactor. Callers hold fs.mu; the claim (fs.compacting) is what
// keeps the append path from rotating once per append while the
// trigger stays satisfied.
func (fs *FileStore) kickCompactorLocked() {
	fs.compacting = true
	select {
	case fs.kick <- struct{}{}:
	default: // a kick is already pending
	}
}

// runCompaction performs one full compaction pass. It reads the prior
// snapshot and the sealed segments from disk — immutable files, so no
// lock is held across any of the heavy IO — folds them into a fresh
// state, streams it to snapshot.json.tmp, atomically publishes it and
// deletes the folded segments. fs.mu is taken only twice: to read the
// segment range at the start and to settle the counters at the end.
//
// Failure is containment, not corruption: the WAL still holds every op
// until the rename lands, so any error before the publish simply leaves
// the segments in place for the next trigger to retry. After a
// successful publish the counters are settled unconditionally —
// leftover segment files (a failed delete, a crash) are covered by the
// snapshot's wal_seq watermark and removed on the next Open or pass,
// never re-folded and never re-counted (the post-rename cleanup bug the
// single-file design had).
func (fs *FileStore) runCompaction() {
	fs.mu.Lock()
	if fs.closed {
		fs.compacting = false
		fs.compactCond.Broadcast()
		fs.mu.Unlock()
		return
	}
	from := fs.snapSeq + 1
	upTo := fs.walSeq - 1 // everything below the active segment is sealed
	pace := fs.compactThrottle
	hook := fs.compactHook
	fs.mu.Unlock()

	if pace == nil {
		// The fold and the snapshot write are CPU-dense (JSON both
		// ways); on a small-GOMAXPROCS host an unpaced pass would
		// monopolize a core for tens of milliseconds and the append
		// path — off the writer path by design — would stall anyway,
		// just on the scheduler instead of the lock. Yield between
		// small batches of records so serving goroutines interleave.
		n := 0
		pace = func() {
			if n++; n%32 == 0 {
				runtime.Gosched()
			}
		}
	}

	fail := func(err error) {
		fs.mu.Lock()
		fs.compactErrs++
		fs.lastCompactErr = err.Error()
		fs.compacting = false
		fs.compactCond.Broadcast()
		fs.mu.Unlock()
	}
	finish := func(foldedOps int, foldedBytes int64, deleted int, deleteErr error) {
		fs.mu.Lock()
		fs.snapSeq = upTo
		fs.compactions++
		fs.segments -= deleted
		// Subtract exactly what this pass folded: segments sealed WHILE
		// the pass ran (seq > upTo) stay counted for the next one.
		if fs.sealedOps -= foldedOps; fs.sealedOps < 0 {
			fs.sealedOps = 0
		}
		if fs.sealedSize -= foldedBytes; fs.sealedSize < 0 {
			fs.sealedSize = 0
		}
		if deleteErr != nil {
			// The snapshot is published; the stale segments are covered
			// by its wal_seq and will be removed on the next pass or
			// Open. Record the failure, but the compaction succeeded —
			// the counters settle unconditionally, so a cleanup failure
			// can neither re-trigger a full compaction on every
			// subsequent append nor re-fold already-folded ops on
			// reboot (the single-file design's post-rename bug).
			fs.compactErrs++
			fs.lastCompactErr = deleteErr.Error()
		} else {
			fs.lastCompactErr = ""
		}
		fs.compacting = false
		fs.compactCond.Broadcast()
		// The active segment may have outgrown the trigger while this
		// pass ran; rotate and re-kick before releasing the lock.
		fs.maybeCompactLocked() //nocmapvet:allow blockingunderlock segment rotation is metadata-only WAL-path IO under fs.mu by design; docs/STATIC_ANALYSIS.md#baselines
		fs.mu.Unlock()
	}

	if upTo < from {
		// Nothing sealed: a kick raced a pass that already folded
		// everything.
		fs.mu.Lock()
		fs.compacting = false
		fs.compactCond.Broadcast()
		fs.mu.Unlock()
		return
	}
	if hook != nil {
		hook("begin")
	}

	// Fold: prior snapshot + sealed segments, replayed from disk into a
	// state of their own — the live fs.state keeps advancing under
	// fs.mu, untouched.
	fold := newMemState()
	coverSeq, err := readSnapshot(fs.path(snapshotFile), &fold, pace)
	if err != nil {
		fail(err)
		return
	}
	if coverSeq != from-1 {
		fail(fmt.Errorf("store: snapshot covers wal_seq %d, expected %d", coverSeq, from-1))
		return
	}
	foldedOps, foldedBytes := 0, int64(0)
	for seq := from; seq <= upTo; seq++ {
		ops, size, err := replaySegment(fs.path(segmentName(seq)), &fold, false, pace)
		if err != nil {
			fail(err)
			return
		}
		foldedOps += ops
		foldedBytes += size
	}
	if hook != nil {
		hook("folded")
	}

	// Publish: stream to the tmp file, fsync, rename, fsync the dir.
	tmp := fs.path(snapshotTmpFile)
	if err := writeSnapshot(tmp, upTo, &fold, pace); err != nil {
		os.Remove(tmp)
		fail(err)
		return
	}
	if hook != nil {
		hook("tmp")
	}
	if err := os.Rename(tmp, fs.path(snapshotFile)); err != nil {
		os.Remove(tmp)
		fail(fmt.Errorf("store: publishing snapshot: %w", err))
		return
	}
	if err := syncDir(fs.dir); err != nil {
		// The rename may not be durable yet, but both the old and the
		// new snapshot state are recoverable (the WAL segments are
		// still intact); treat as published and surface the error.
		finish(foldedOps, foldedBytes, 0, fmt.Errorf("store: syncing dir after snapshot publish: %w", err))
		return
	}
	if hook != nil {
		hook("renamed")
	}

	// Retire: the folded segments are dead weight now — replay would
	// skip them by wal_seq even if they survived.
	deleted := 0
	var deleteErr error
	for seq := from; seq <= upTo; seq++ {
		if err := os.Remove(fs.path(segmentName(seq))); err != nil {
			deleteErr = fmt.Errorf("store: deleting folded segment %s: %w", segmentName(seq), err)
			continue
		}
		deleted++
	}
	if err := syncDir(fs.dir); err != nil && deleteErr == nil {
		deleteErr = fmt.Errorf("store: syncing dir after segment delete: %w", err)
	}
	if hook != nil {
		hook("deleted")
	}
	finish(foldedOps, foldedBytes, deleted, deleteErr)
}

// waitCompactionsLocked blocks until no compaction is in flight.
// Callers hold fs.mu.
func (fs *FileStore) waitCompactionsLocked() {
	for fs.compacting {
		fs.compactCond.Wait()
	}
}
