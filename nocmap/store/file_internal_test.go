package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func irec(id string, seq uint64, result string) JobRecord {
	r := JobRecord{
		ID:    id,
		Key:   "key-" + id,
		State: StateDone,
		Seq:   seq,
	}
	if result != "" {
		r.Result = json.RawMessage(result)
	}
	return r
}

// waitCompactions blocks until the store has published at least n
// snapshots and no pass is in flight.
func waitCompactions(t *testing.T, fs *FileStore, n uint64) CompactionStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fs.CompactionStats()
		if st.Compactions >= n && !st.Running {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// loadJSON marshals a store's snapshot for byte-level comparison.
func loadJSON(t *testing.T, fs *FileStore) []byte {
	t.Helper()
	snap, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSegmentRotation pins the tentpole mechanics: crossing the op
// trigger rotates to a fresh segment, the compactor folds the sealed
// one into the snapshot off the append path, and the folded segment is
// deleted — with the state surviving a reopen byte-identical.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := fs.PutJob(irec("job-1", uint64(i+1), fmt.Sprintf(`{"round":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	st := waitCompactions(t, fs, 1)
	if st.Errors != 0 {
		t.Fatalf("compaction errors: %+v", st)
	}
	if st.Segments != 1 {
		t.Fatalf("folded segments not deleted: %+v", st)
	}
	before := loadJSON(t, fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot must carry the coverage watermark.
	raw, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"wal_seq":`)) {
		t.Fatalf("snapshot missing wal_seq watermark: %.120s", raw)
	}

	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if after := loadJSON(t, again); !bytes.Equal(before, after) {
		t.Fatalf("state drifted across reopen:\n before %s\n after  %s", before, after)
	}
}

// TestByteSizeTrigger pins the new trigger dimension: a handful of huge
// records must compact on volume alone, far below the op-count floor.
func TestByteSizeTrigger(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 1 << 30, CompactBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	big := `{"blob":"` + strings.Repeat("x", 16<<10) + `"}`
	for i := 0; i < 8; i++ {
		if err := fs.PutJob(irec("job-1", uint64(i+1), big)); err != nil {
			t.Fatal(err)
		}
	}
	st := waitCompactions(t, fs, 1)
	if st.Compactions == 0 {
		t.Fatalf("byte trigger never fired: %+v", st)
	}
	if st.PendingBytes >= 128<<10 {
		t.Fatalf("pending bytes did not shrink: %+v", st)
	}
}

// TestAppendsDuringCompaction drives appends concurrently with a
// throttled (slow) compaction pass and checks nothing deadlocks, the
// active segment keeps absorbing writes, and the final state survives
// reopen intact.
func TestAppendsDuringCompaction(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 32})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	fs.compactThrottle = func() {
		select {
		case <-release:
		default:
			time.Sleep(200 * time.Microsecond)
		}
	}
	const total = 200
	for i := 0; i < total; i++ {
		if err := fs.PutJob(irec(fmt.Sprintf("job-%03d", i%7), uint64(i+1), fmt.Sprintf(`{"round":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	close(release)
	st := waitCompactions(t, fs, 1)
	if st.Errors != 0 {
		t.Fatalf("compaction errors under concurrent appends: %+v", st)
	}
	before := loadJSON(t, fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if after := loadJSON(t, again); !bytes.Equal(before, after) {
		t.Fatalf("state drifted across reopen:\n before %s\n after  %s", before, after)
	}
}

// TestStaleSnapshotTmpRemovedOnOpen is the satellite regression: a
// snapshot.json.tmp left by a compaction that died before publishing
// must be deleted during recovery — it is not a snapshot and nothing
// may ever read it.
func TestStaleSnapshotTmpRemovedOnOpen(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.PutJob(irec("job-1", 1, `{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, snapshotTmpFile)
	if err := os.WriteFile(tmp, []byte(`{"wal_seq":9,"jobs":[half-written garb`), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := Open(dir)
	if err != nil {
		t.Fatalf("stale tmp must not fail Open: %v", err)
	}
	defer again.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("stale %s survived Open (err=%v)", snapshotTmpFile, err)
	}
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ID != "job-1" {
		t.Fatalf("state after tmp cleanup = %+v", snap.Jobs)
	}
}

// TestCompactionSurvivesLeftoverSegment is the post-rename-cleanup
// satellite: a folded segment that survives the publish (crash or
// failed delete between rename and unlink) must be deleted — never
// re-folded, never re-counted — on the next Open, and must not leave
// the store re-attempting compaction forever.
func TestCompactionSurvivesLeftoverSegment(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Stash a copy of every sealed segment at publish time, then restore
	// them after the pass — the exact disk state a crash between the
	// rename and the deletes leaves behind.
	var stash map[string][]byte
	fs.compactHook = func(step string) {
		if step != "renamed" {
			return
		}
		stash = make(map[string][]byte)
		segs, _ := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"+segmentSuffix))
		for _, seg := range segs[:len(segs)-1] { // all but the active segment
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Errorf("stashing %s: %v", seg, err)
				continue
			}
			stash[seg] = data
		}
	}
	for i := 0; i < 40; i++ {
		if err := fs.PutJob(irec("job-1", uint64(i+1), fmt.Sprintf(`{"round":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCompactions(t, fs, 1)
	before := loadJSON(t, fs)
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if len(stash) == 0 {
		t.Fatal("compaction hook never saw a sealed segment")
	}
	for seg, data := range stash {
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	again, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with leftover folded segment: %v", err)
	}
	defer again.Close()
	// The leftover is covered by the snapshot's wal_seq: deleted, not
	// replayed (replaying would double-fold the churned ops).
	if after := loadJSON(t, again); !bytes.Equal(before, after) {
		t.Fatalf("leftover segment was re-folded:\n before %s\n after  %s", before, after)
	}
	for seg := range stash {
		if _, err := os.Stat(seg); !os.IsNotExist(err) {
			t.Fatalf("leftover folded segment %s survived Open (err=%v)", filepath.Base(seg), err)
		}
	}
	// And the settled counters must not re-attempt compaction forever:
	// a few more appends stay below the trigger.
	for i := 0; i < 4; i++ {
		if err := again.PutJob(irec("job-2", uint64(i+1), "")); err != nil {
			t.Fatal(err)
		}
	}
	if st := again.CompactionStats(); st.Compactions != 0 || st.PendingOps >= 16 {
		t.Fatalf("counters did not settle after leftover cleanup: %+v", st)
	}
}

// TestFailedSegmentDeleteStillSettles pins the other half of the same
// satellite: when the snapshot publishes but deleting a folded segment
// fails, the compaction still counts, the counters still settle (no
// permanent re-compaction loop), and the error is surfaced in the
// stats rather than swallowed.
func TestFailedSegmentDeleteStillSettles(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 16})
	if err != nil {
		t.Fatal(err)
	}
	// At publish time, swap the first sealed segment for a non-empty
	// directory: os.Remove fails on it, simulating an unlink error.
	var blocked string
	fs.compactHook = func(step string) {
		if step != "renamed" || blocked != "" {
			return
		}
		segs, _ := filepath.Glob(filepath.Join(dir, segmentPrefix+"*"+segmentSuffix))
		if len(segs) < 2 {
			t.Error("no sealed segment at publish time")
			return
		}
		blocked = segs[0]
		if err := os.Remove(blocked); err != nil {
			t.Error(err)
			return
		}
		if err := os.MkdirAll(filepath.Join(blocked, "pin"), 0o755); err != nil {
			t.Error(err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := fs.PutJob(irec("job-1", uint64(i+1), fmt.Sprintf(`{"round":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	st := waitCompactions(t, fs, 1)
	if blocked == "" {
		t.Fatal("hook never pinned a segment")
	}
	if st.Errors == 0 {
		t.Fatalf("failed delete not surfaced: %+v", st)
	}
	// The compaction itself succeeded and the counters settled: more
	// appends below the trigger must not re-attempt compaction.
	passes := st.Compactions
	for i := 0; i < 4; i++ {
		if err := fs.PutJob(irec("job-2", uint64(i+1), "")); err != nil {
			t.Fatal(err)
		}
	}
	if st := fs.CompactionStats(); st.Compactions != passes {
		t.Fatalf("failed cleanup re-triggered compaction: %+v (had %d passes)", st, passes)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// Clear the obstruction; the next Open removes the stale segment.
	if err := os.RemoveAll(blocked); err != nil {
		t.Fatal(err)
	}
}

// TestMidBatchApplyFailureGoesReadOnly is the ApplyOps satellite: once
// a batch is fsynced, an op that fails to apply must flip the store
// read-only — loudly — instead of leaving the WAL silently ahead of
// the in-memory state with the op counters short.
func TestMidBatchApplyFailureGoesReadOnly(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs.applyFault = func(op walOp) error {
		if op.Job != nil && op.Job.ID == "job-poison" {
			return fmt.Errorf("injected apply fault")
		}
		return nil
	}
	a, b, c := irec("job-a", 1, ""), irec("job-poison", 2, ""), irec("job-c", 3, "")
	err = fs.ApplyOps([]Op{
		{Kind: OpPutJob, Rec: &a},
		{Kind: OpPutJob, Rec: &b},
		{Kind: OpPutJob, Rec: &c},
	})
	if err == nil || !strings.Contains(err.Error(), "injected apply fault") {
		t.Fatalf("mid-batch apply failure returned %v", err)
	}
	// Loud: every subsequent write is refused.
	if err := fs.PutJob(irec("job-d", 4, "")); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("store accepted writes after apply divergence: %v", err)
	}
	if err := fs.ApplyOps([]Op{{Kind: OpPutJob, Rec: &a}}); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("ApplyOps accepted a batch after apply divergence: %v", err)
	}
	// The WAL holds the whole fsynced batch and the counters cover it.
	fs.mu.Lock()
	walOps := fs.walOps
	fs.mu.Unlock()
	if walOps != 3 {
		t.Fatalf("walOps = %d after a 3-op fsynced batch, want 3", walOps)
	}
	// Reads still work, and memory carries everything that applied.
	snap, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 2 {
		t.Fatalf("applied jobs = %+v, want job-a and job-c", snap.Jobs)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	// The fault was injected, not real: replay recovers the full batch.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	snap, err = again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 3 {
		t.Fatalf("replayed jobs = %+v, want the whole fsynced batch", snap.Jobs)
	}
}

// TestSingleOpApplyFailureGoesReadOnly pins the same contract on the
// single-op append path.
func TestSingleOpApplyFailureGoesReadOnly(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	fs.applyFault = func(op walOp) error { return fmt.Errorf("injected apply fault") }
	if err := fs.PutJob(irec("job-a", 1, "")); err == nil {
		t.Fatal("append with a poisoned apply must fail")
	}
	fs.applyFault = nil
	if err := fs.PutJob(irec("job-b", 2, "")); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("store writable after apply divergence: %v", err)
	}
}

// TestLegacyWALMigration: a pre-segment store (single wal.jsonl, no
// wal_seq in the snapshot) must open cleanly, its WAL becoming
// segment 1.
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	legacySnap := `{"jobs":[{"id":"job-old","key":"key-job-old","state":"done","seq":1}],"cache":null,"replicas":null}`
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte(legacySnap+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	legacyWAL := `{"op":"job","job":{"id":"job-new","key":"key-job-new","state":"done","seq":2}}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, legacyWALFile), []byte(legacyWAL), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(dir)
	if err != nil {
		t.Fatalf("opening a legacy store: %v", err)
	}
	defer fs.Close()
	snap, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != 2 {
		t.Fatalf("legacy state = %+v, want snapshot job + wal job", snap.Jobs)
	}
	if _, err := os.Stat(filepath.Join(dir, legacyWALFile)); !os.IsNotExist(err) {
		t.Fatalf("legacy wal.jsonl survived migration (err=%v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); err != nil {
		t.Fatalf("legacy wal was not migrated to segment 1: %v", err)
	}
	// And appends keep working in the migrated store.
	if err := fs.PutJob(irec("job-after", 3, "")); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentGapFailsLoudly: a missing middle segment means fsynced ops
// vanished; Open must refuse rather than replay around the hole.
func TestSegmentGapFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 1 << 30}) // never compact
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := fs.PutJob(irec("job-1", uint64(i+1), "")); err != nil {
			t.Fatal(err)
		}
	}
	// Seal two more segments by rotating manually.
	fs.mu.Lock()
	if err := fs.rotateLocked(); err != nil {
		fs.mu.Unlock()
		t.Fatal(err)
	}
	fs.mu.Unlock()
	if err := fs.PutJob(irec("job-1", 5, "")); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	if err := fs.rotateLocked(); err != nil {
		fs.mu.Unlock()
		t.Fatal(err)
	}
	fs.mu.Unlock()
	if err := fs.PutJob(irec("job-1", 6, "")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segmentName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("Open with a segment hole = %v, want loud failure", err)
	}
}

// TestGroupCommitSyncAcrossCompaction layers the async writer over the
// file store and checks Sync(ctx) durability barriers hold while a
// throttled compaction runs underneath: every acked record survives a
// reopen.
func TestGroupCommitSyncAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 24})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	fs.compactThrottle = func() {
		select {
		case <-release:
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	g := NewGroupCommit(fs, GroupCommitConfig{MaxBatch: 8})
	const total = 120
	for i := 0; i < total; i++ {
		if err := g.PutJob(irec(fmt.Sprintf("job-%03d", i), uint64(i+1), fmt.Sprintf(`{"round":%d}`, i))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := g.Sync(ctx)
			cancel()
			if err != nil {
				t.Fatalf("Sync during compaction: %v", err)
			}
		}
	}
	close(release)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	snap, err := again.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Jobs) != total {
		t.Fatalf("recovered %d jobs, acked %d — durability barrier leaked across compaction", len(snap.Jobs), total)
	}
}
