package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// FileStore is the durable JobStore: an append-only JSON-lines WAL,
// split into segment files (wal.000001.jsonl, ...), folded into a
// snapshot (snapshot.json) by a dedicated compactor goroutine. Every
// append is fsynced before the call returns, so a SIGKILL at any
// instant loses at most the operation in flight; a torn final line in
// the active segment (the signature of a crash mid-append) is detected
// and truncated away on the next Open.
//
// Compaction is off the writer path by construction: hitting a trigger
// (op count or WAL bytes, see FileConfig) rotates to a fresh active
// segment — a couple of metadata syscalls under the store lock — and
// the compactor streams the sealed segments plus the prior snapshot
// into a new snapshot without ever blocking an append. A snapshot that
// takes seconds to write therefore costs concurrent appends nothing
// but disk bandwidth.
type FileStore struct {
	dir string

	mu      sync.Mutex
	wal     *os.File // active segment, open for append
	walSeq  uint64   // active segment's sequence number
	walOps  int      // whole-line appends in the active segment
	walSize int64    // end offset of the last fully appended line
	closed  bool
	roCause string // non-empty: the store refused further writes (see readOnlyLocked)
	state   memState

	compactOps   int   // op-count compaction trigger floor
	compactBytes int64 // byte-size compaction trigger

	// Compactor coordination. sealedOps/sealedSize cover segments
	// sealed by rotation but not yet folded into the snapshot; snapSeq
	// is the highest segment the published snapshot covers.
	sealedOps      int
	sealedSize     int64
	segments       int // segment files on disk (sealed + active)
	snapSeq        uint64
	compacting     bool
	compactCond    *sync.Cond
	kick           chan struct{}
	quit           chan struct{}
	compactorDone  chan struct{}
	compactions    uint64
	compactErrs    uint64
	lastCompactErr string

	// Test hooks, nil in production: applyFault poisons state.apply
	// after the fsync (the mid-batch failure contract), compactHook
	// observes the compactor's publish steps (the crash suite SIGKILLs
	// inside it), compactThrottle stretches the snapshot encode (the
	// latency bench forces a multi-second compaction with it).
	applyFault      func(walOp) error
	compactHook     func(step string)
	compactThrottle func()
}

// memState is the store's authoritative in-memory image, mirrored by
// snapshot+WAL on disk.
type memState struct {
	jobs         map[string]JobRecord
	jobOrder     []string
	cache        map[string]CacheEntry
	cacheOrder   []string
	replicas     map[string]JobRecord
	replicaOrder []string
}

func newMemState() memState {
	return memState{
		jobs:     make(map[string]JobRecord),
		cache:    make(map[string]CacheEntry),
		replicas: make(map[string]JobRecord),
	}
}

// walOp is one log line.
type walOp struct {
	Op     string          `json:"op"` // "job", "deljob", "cache", "delcache", "replica", "delreplica"
	Job    *JobRecord      `json:"job,omitempty"`
	ID     string          `json:"id,omitempty"`
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

const (
	// defaultCompactOps is the minimum number of WAL appends before a
	// compaction is considered; beyond it, the WAL is folded into the
	// snapshot whenever it holds more than 4x the live record count.
	defaultCompactOps = 1024

	// defaultCompactBytes triggers a compaction on WAL volume alone: a
	// handful of huge terminal-result records can grow the log to GBs
	// without ever reaching the op-count floor, and the byte trigger
	// bounds the replay a reboot would pay.
	defaultCompactBytes = 256 << 20
)

// FileConfig tunes a FileStore. The zero value picks the defaults
// noted on each field.
type FileConfig struct {
	// CompactOps is the op-count compaction floor: once at least this
	// many WAL appends have accumulated since the last snapshot AND the
	// log holds more than 4x the live record count, the store rotates
	// segments and compacts. Default 1024.
	CompactOps int
	// CompactBytes is the byte-size compaction trigger: once the WAL
	// (sealed + active segments) exceeds it, the store compacts
	// regardless of op count — a few multi-MB result records must not
	// grow the log without bound. Default 256 MiB.
	CompactBytes int64
}

// Open opens (or creates) a file store rooted at dir with default
// compaction triggers. See OpenConfig.
func Open(dir string) (*FileStore, error) { return OpenConfig(dir, FileConfig{}) }

// OpenConfig opens (or creates) a file store rooted at dir. It reads
// the snapshot, replays the WAL segments on top — deleting stale
// segments the snapshot already covers, dropping a torn trailing line
// left by a crash mid-append, and removing a stale snapshot.json.tmp
// left by a compaction the crash interrupted — then leaves the active
// segment open for appending and starts the compactor goroutine. A
// pre-segment wal.jsonl is migrated to segment 1 in place.
func OpenConfig(dir string, cfg FileConfig) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	fs := &FileStore{
		dir:           dir,
		state:         newMemState(),
		compactOps:    cfg.CompactOps,
		compactBytes:  cfg.CompactBytes,
		kick:          make(chan struct{}, 1),
		quit:          make(chan struct{}),
		compactorDone: make(chan struct{}),
	}
	if fs.compactOps <= 0 {
		fs.compactOps = defaultCompactOps
	}
	if fs.compactBytes <= 0 {
		fs.compactBytes = defaultCompactBytes
	}
	fs.compactCond = sync.NewCond(&fs.mu)

	// A snapshot.json.tmp is a compaction that never published — a
	// crash or error between the tmp write and the rename. It must not
	// survive into this incarnation: the next compaction recreates it
	// from scratch, and nothing else may ever read it.
	if err := os.Remove(fs.path(snapshotTmpFile)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: removing stale snapshot tmp: %w", err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Migrate a pre-segment store: its single wal.jsonl becomes segment 1.
	if _, err := os.Stat(fs.path(legacyWALFile)); err == nil {
		if len(segs) > 0 {
			return nil, fmt.Errorf("store: both %s and wal segments present in %s", legacyWALFile, dir)
		}
		if err := os.Rename(fs.path(legacyWALFile), fs.path(segmentName(1))); err != nil {
			return nil, fmt.Errorf("store: migrating legacy wal: %w", err)
		}
		if err := syncDir(dir); err != nil {
			return nil, fmt.Errorf("store: syncing dir after wal migration: %w", err)
		}
		segs = []uint64{1}
	}

	snapSeq, err := readSnapshot(fs.path(snapshotFile), &fs.state, nil)
	if err != nil {
		return nil, err
	}
	fs.snapSeq = snapSeq

	// Segments the snapshot already covers are leftovers of a crash (or
	// failed delete) after the rename landed: their ops are folded in,
	// so replaying them would be redundant at best. Delete, don't read.
	live := segs[:0]
	stale := false
	for _, seq := range segs {
		if seq <= snapSeq {
			if err := os.Remove(fs.path(segmentName(seq))); err != nil {
				return nil, fmt.Errorf("store: removing folded segment %s: %w", segmentName(seq), err)
			}
			stale = true
			continue
		}
		live = append(live, seq)
	}
	if stale {
		if err := syncDir(dir); err != nil {
			return nil, fmt.Errorf("store: syncing dir after stale segment cleanup: %w", err)
		}
	}
	// The surviving segments must be exactly snapSeq+1..snapSeq+n: a
	// hole means a segment of fsynced ops vanished — fail loudly rather
	// than replay around it.
	for i, seq := range live {
		if want := snapSeq + 1 + uint64(i); seq != want {
			return nil, fmt.Errorf("store: wal segment %s missing (found %s)", segmentName(want), segmentName(seq))
		}
	}

	for i, seq := range live {
		active := i == len(live)-1
		path := fs.path(segmentName(seq))
		ops, good, err := replaySegment(path, &fs.state, active, nil)
		if err != nil {
			return nil, err
		}
		if !active {
			fs.sealedOps += ops
			fs.sealedSize += good
			continue
		}
		if info, serr := os.Stat(path); serr == nil && good < info.Size() {
			// Crash mid-append: drop the torn tail so the next append
			// starts on a clean line boundary.
			if err := os.Truncate(path, good); err != nil {
				return nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
			}
		}
		fs.walOps = ops
		fs.walSize = good
	}

	if len(live) == 0 {
		fs.walSeq = snapSeq + 1
	} else {
		fs.walSeq = live[len(live)-1]
	}
	wal, err := os.OpenFile(fs.path(segmentName(fs.walSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening wal segment: %w", err)
	}
	if len(live) == 0 {
		// The fresh active segment must survive a crash before its
		// first append, or the next Open would see a hole.
		if err := syncDir(dir); err != nil {
			wal.Close()
			return nil, fmt.Errorf("store: syncing dir after segment create: %w", err)
		}
	}
	fs.wal = wal
	fs.segments = len(live)
	if fs.segments == 0 {
		fs.segments = 1
	}

	go fs.compactor()
	if fs.segments > 1 {
		// Sealed segments survived the restart (a crash beat the
		// compactor, or deletes failed); fold them now.
		fs.mu.Lock()
		fs.kickCompactorLocked()
		fs.mu.Unlock()
	}
	return fs, nil
}

func (fs *FileStore) path(name string) string { return filepath.Join(fs.dir, name) }

// validate rejects malformed operations before they reach the WAL or
// the state: an invalid op must never be fsynced to disk, where it
// would poison every subsequent replay.
func (op walOp) validate() error {
	switch op.Op {
	case "job", "replica":
		if op.Job == nil || op.Job.ID == "" {
			return fmt.Errorf("store: %s op without record", op.Op)
		}
	case "deljob", "delcache", "delreplica":
	case "cache":
		if op.Key == "" {
			return fmt.Errorf("store: cache op without key")
		}
	default:
		return fmt.Errorf("store: unknown wal op %q", op.Op)
	}
	return nil
}

// apply folds one WAL operation into the state.
func (s *memState) apply(op walOp) error {
	if err := op.validate(); err != nil {
		return err
	}
	switch op.Op {
	case "job":
		s.putJob(*op.Job)
	case "deljob":
		s.delJob(op.ID)
	case "cache":
		s.putCache(op.Key, op.Result)
	case "delcache":
		s.delCache(op.Key)
	case "replica":
		s.putReplica(*op.Job)
	case "delreplica":
		s.delReplica(op.ID)
	}
	return nil
}

func (s *memState) putJob(rec JobRecord) {
	if _, ok := s.jobs[rec.ID]; !ok {
		s.jobOrder = append(s.jobOrder, rec.ID)
	}
	s.jobs[rec.ID] = copyRecord(rec)
}

func (s *memState) delJob(id string) {
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, have := range s.jobOrder {
		if have == id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

func (s *memState) putCache(key string, result json.RawMessage) {
	if _, ok := s.cache[key]; !ok {
		s.cacheOrder = append(s.cacheOrder, key)
	}
	s.cache[key] = CacheEntry{Key: key, Result: rawCopy(result)}
}

func (s *memState) delCache(key string) {
	if _, ok := s.cache[key]; !ok {
		return
	}
	delete(s.cache, key)
	for i, have := range s.cacheOrder {
		if have == key {
			s.cacheOrder = append(s.cacheOrder[:i], s.cacheOrder[i+1:]...)
			break
		}
	}
}

func (s *memState) putReplica(rec JobRecord) {
	if _, ok := s.replicas[rec.ID]; !ok {
		s.replicaOrder = append(s.replicaOrder, rec.ID)
	}
	s.replicas[rec.ID] = copyRecord(rec)
}

func (s *memState) delReplica(id string) {
	if _, ok := s.replicas[id]; !ok {
		return
	}
	delete(s.replicas, id)
	for i, have := range s.replicaOrder {
		if have == id {
			s.replicaOrder = append(s.replicaOrder[:i], s.replicaOrder[i+1:]...)
			break
		}
	}
}

// writableLocked reports whether the store accepts writes. Callers
// hold fs.mu.
func (fs *FileStore) writableLocked() error {
	if fs.closed {
		return fmt.Errorf("store: closed")
	}
	if fs.roCause != "" {
		return fmt.Errorf("store: read-only: %s", fs.roCause)
	}
	return nil
}

// applyLocked folds one fsynced op into the in-memory state. A failure
// here is the one divergence the store cannot absorb: the op is durable
// in the WAL but not in memory, so writes stop loudly (read-only)
// instead of letting the two images drift apart silently. Callers hold
// fs.mu and have already counted the op into walOps/walSize.
func (fs *FileStore) applyLocked(op walOp) error {
	err := func() error {
		if fs.applyFault != nil {
			if ferr := fs.applyFault(op); ferr != nil {
				return ferr
			}
		}
		return fs.state.apply(op)
	}()
	if err != nil {
		fs.roCause = fmt.Sprintf("fsynced wal op failed to apply: %v", err)
		return fmt.Errorf("store: %s", fs.roCause)
	}
	return nil
}

// append writes one op to the active WAL segment, fsyncs it and folds
// it into the in-memory state, rotating segments (and waking the
// compactor) when the log has outgrown the state.
func (fs *FileStore) append(op walOp) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writableLocked(); err != nil {
		return err
	}
	if err := op.validate(); err != nil {
		return err // never fsync an op replay would choke on
	}
	line, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("store: encoding wal op: %w", err)
	}
	line = append(line, '\n')
	if _, err := fs.wal.Write(line); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		// A short write (ENOSPC, I/O error) may have left a line
		// fragment; roll the file back to the last whole line so a later
		// successful append cannot glue onto the fragment and turn a
		// transient failure into permanent mid-log corruption.
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: appending wal: %w", err)
	}
	if err := fs.wal.Sync(); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: syncing wal: %w", err)
	}
	fs.walSize += int64(len(line))
	fs.walOps++
	if err := fs.applyLocked(op); err != nil {
		return err
	}
	fs.maybeCompactLocked() //nocmapvet:allow blockingunderlock segment rotation is metadata-only WAL-path IO under fs.mu by design; docs/STATIC_ANALYSIS.md#baselines
	return nil
}

// ApplyOps implements BatchStore: every op in the batch is marshaled,
// written and fsynced as ONE WAL append — the group commit that lets an
// async writer amortize fsync latency over many terminal transitions.
// Order inside the batch is the WAL order. On a write or sync error the
// file is rolled back to the pre-batch line boundary, so a failed batch
// leaves no partial ops behind and may be retried op by op; once the
// batch IS fsynced, it applies whole — an op that then fails to apply
// flips the store read-only (see applyLocked) instead of leaving the
// WAL silently ahead of the in-memory state. Rotation is considered
// once per batch, not once per op, which keeps it off the
// per-transition hot path.
func (fs *FileStore) ApplyOps(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.writableLocked(); err != nil {
		return err
	}
	wops := make([]walOp, len(ops))
	var buf bytes.Buffer
	for i, op := range ops {
		w := op.wal()
		if err := w.validate(); err != nil {
			return err // never fsync an op replay would choke on
		}
		line, err := json.Marshal(w)
		if err != nil {
			return fmt.Errorf("store: encoding wal op: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		wops[i] = w
	}
	if _, err := fs.wal.Write(buf.Bytes()); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: appending wal batch: %w", err)
	}
	if err := fs.wal.Sync(); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the WAL append serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: syncing wal batch: %w", err)
	}
	fs.walSize += int64(buf.Len())
	fs.walOps += len(wops)
	var firstErr error
	for _, w := range wops {
		if err := fs.applyLocked(w); err != nil && firstErr == nil {
			// Keep applying the rest: the WAL holds the whole batch, so
			// memory should carry everything it can before the store
			// goes read-only on the divergence.
			firstErr = err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	fs.maybeCompactLocked() //nocmapvet:allow blockingunderlock segment rotation is metadata-only WAL-path IO under fs.mu by design; docs/STATIC_ANALYSIS.md#baselines
	return nil
}

// rollbackLocked restores the active segment to its last known line
// boundary after a failed append. If even the truncate fails, the
// store refuses further writes — better loudly read-only than silently
// corrupting.
func (fs *FileStore) rollbackLocked() {
	if err := fs.wal.Truncate(fs.walSize); err != nil {
		fs.roCause = fmt.Sprintf("wal rollback failed: %v", err)
	}
}

// maybeCompactLocked checks the compaction triggers and, when one
// fires, rotates to a fresh active segment and wakes the compactor.
// The rotation is the append path's entire share of a compaction:
// open-next-segment + fsync-dir, a couple of metadata syscalls —
// snapshot IO happens on the compactor goroutine, never here. Callers
// hold fs.mu.
func (fs *FileStore) maybeCompactLocked() {
	if fs.closed || fs.roCause != "" {
		return
	}
	live := len(fs.state.jobs) + len(fs.state.cache) + len(fs.state.replicas)
	totalOps := fs.sealedOps + fs.walOps
	totalBytes := fs.sealedSize + fs.walSize
	opsTrigger := totalOps >= fs.compactOps && totalOps > 4*live
	if !opsTrigger && totalBytes < fs.compactBytes {
		return
	}
	// Rotate only when the active segment itself is worth sealing:
	// either it alone crossed a trigger, or nothing is sealed yet. When
	// a sealed backlog already exists (an in-flight pass, or a failed
	// one awaiting retry), appends must not rotate once per op — a
	// multi-second compaction bounds the active segment by re-rotating
	// only when that segment re-crosses a trigger on its own.
	activeBig := fs.walOps >= fs.compactOps || fs.walSize >= fs.compactBytes
	if fs.walOps > 0 && (activeBig || (fs.sealedOps == 0 && fs.sealedSize == 0)) {
		if err := fs.rotateLocked(); err != nil {
			// The WAL keeps appending to the current segment; the trigger
			// stays satisfied and retries on the next append.
			fs.compactErrs++
			fs.lastCompactErr = err.Error()
			return
		}
	}
	if !fs.compacting && fs.walSeq > fs.snapSeq+1 {
		fs.kickCompactorLocked()
	}
}

// rotateLocked seals the active segment and opens the next one. The
// new segment is created and the directory fsynced BEFORE the switch,
// so an append acknowledged into it can never land in a file a crash
// would un-create. Callers hold fs.mu.
func (fs *FileStore) rotateLocked() error {
	next := fs.walSeq + 1
	f, err := os.OpenFile(fs.path(segmentName(next)), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating wal segment: %w", err)
	}
	if err := syncDir(fs.dir); err != nil {
		f.Close()
		os.Remove(fs.path(segmentName(next)))
		return fmt.Errorf("store: syncing dir after segment create: %w", err)
	}
	old := fs.wal
	fs.wal = f
	fs.walSeq = next
	fs.sealedOps += fs.walOps
	fs.sealedSize += fs.walSize
	fs.walOps = 0
	fs.walSize = 0
	fs.segments++
	// Every line in the sealed segment is already fsynced whole; the
	// close releases the descriptor, nothing more.
	old.Close()
	return nil
}

func (s *memState) snapshot() *Snapshot {
	snap := &Snapshot{}
	for _, id := range s.jobOrder {
		snap.Jobs = append(snap.Jobs, copyRecord(s.jobs[id]))
	}
	for _, key := range s.cacheOrder {
		entry := s.cache[key]
		snap.Cache = append(snap.Cache, CacheEntry{Key: key, Result: rawCopy(entry.Result)})
	}
	for _, id := range s.replicaOrder {
		snap.Replicas = append(snap.Replicas, copyRecord(s.replicas[id]))
	}
	return snap
}

// PutJob implements JobStore.
func (fs *FileStore) PutJob(rec JobRecord) error {
	r := copyRecord(rec)
	return fs.append(walOp{Op: "job", Job: &r})
}

// DeleteJob implements JobStore.
func (fs *FileStore) DeleteJob(id string) error {
	return fs.append(walOp{Op: "deljob", ID: id})
}

// PutCache implements JobStore.
func (fs *FileStore) PutCache(key string, result json.RawMessage) error {
	return fs.append(walOp{Op: "cache", Key: key, Result: rawCopy(result)})
}

// DeleteCache implements JobStore.
func (fs *FileStore) DeleteCache(key string) error {
	return fs.append(walOp{Op: "delcache", Key: key})
}

// PutReplica implements JobStore.
func (fs *FileStore) PutReplica(rec JobRecord) error {
	r := copyRecord(rec)
	return fs.append(walOp{Op: "replica", Job: &r})
}

// DeleteReplica implements JobStore.
func (fs *FileStore) DeleteReplica(id string) error {
	return fs.append(walOp{Op: "delreplica", ID: id})
}

// Load implements JobStore.
func (fs *FileStore) Load() (*Snapshot, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.state.snapshot(), nil
}

// Close implements JobStore: further writes fail. An in-flight
// compaction is drained first (its snapshot publish is already
// crash-safe, but a clean close leaves no work half-done), then the
// compactor goroutine is stopped and the active segment released.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	fs.waitCompactionsLocked()
	fs.mu.Unlock()
	close(fs.quit)
	<-fs.compactorDone
	return fs.wal.Close()
}
