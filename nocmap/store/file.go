package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FileStore is the durable JobStore: an append-only JSON-lines log
// (wal.jsonl) compacted into a snapshot (snapshot.json) once it grows
// past a multiple of the live state. Every append is fsynced before the
// call returns, so a SIGKILL at any instant loses at most the operation
// in flight; a torn final line (the signature of a crash mid-append) is
// detected and truncated away on the next Open.
type FileStore struct {
	dir string

	mu      sync.Mutex
	wal     *os.File
	walOps  int   // appends since the last compaction
	walSize int64 // end offset of the last fully appended line
	closed  bool
	state   memState
	compact int // compaction threshold floor (tests lower it)
}

// memState is the store's authoritative in-memory image, mirrored by
// snapshot+WAL on disk.
type memState struct {
	jobs         map[string]JobRecord
	jobOrder     []string
	cache        map[string]CacheEntry
	cacheOrder   []string
	replicas     map[string]JobRecord
	replicaOrder []string
}

func newMemState() memState {
	return memState{
		jobs:     make(map[string]JobRecord),
		cache:    make(map[string]CacheEntry),
		replicas: make(map[string]JobRecord),
	}
}

// walOp is one log line.
type walOp struct {
	Op     string          `json:"op"` // "job", "deljob", "cache", "delcache", "replica", "delreplica"
	Job    *JobRecord      `json:"job,omitempty"`
	ID     string          `json:"id,omitempty"`
	Key    string          `json:"key,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.jsonl"

	// defaultCompactFloor is the minimum number of WAL appends before a
	// compaction is considered; beyond it, the WAL is folded into the
	// snapshot whenever it holds more than 4x the live record count.
	defaultCompactFloor = 1024
)

// Open opens (or creates) a file store rooted at dir. It reads the
// snapshot, replays the WAL on top — dropping a torn trailing line left
// by a crash mid-append — and leaves the WAL open for appending.
func Open(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	fs := &FileStore{dir: dir, state: newMemState(), compact: defaultCompactFloor}
	if err := fs.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := fs.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(fs.path(walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening wal: %w", err)
	}
	if info, err := wal.Stat(); err == nil {
		fs.walSize = info.Size() // replayWAL left only whole lines behind
	}
	fs.wal = wal
	return fs, nil
}

func (fs *FileStore) path(name string) string { return filepath.Join(fs.dir, name) }

// loadSnapshot reads snapshot.json into the in-memory state, if present.
func (fs *FileStore) loadSnapshot() error {
	data, err := os.ReadFile(fs.path(snapshotFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: parsing snapshot: %w", err)
	}
	for _, rec := range snap.Jobs {
		fs.state.putJob(rec)
	}
	for _, entry := range snap.Cache {
		fs.state.putCache(entry.Key, entry.Result)
	}
	for _, rec := range snap.Replicas {
		fs.state.putReplica(rec)
	}
	return nil
}

// replayWAL applies wal.jsonl on top of the snapshot. Only the final
// line can be torn (every earlier line was fsynced whole before the
// next append started), so an undecodable or unterminated trailing
// line marks the crash point and is truncated away; an invalid line
// followed by more data is real corruption and fails Open loudly
// instead of silently discarding the records behind it.
func (fs *FileStore) replayWAL() error {
	f, err := os.Open(fs.path(walFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening wal: %w", err)
	}
	defer f.Close()

	var good int64                      // offset of the last cleanly applied line's end
	r := bufio.NewReaderSize(f, 64<<10) // no line-length cap: ReadBytes grows
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if len(bytes.TrimSpace(line)) > 0 {
				break // unterminated tail: torn mid-append
			}
			good += int64(len(line))
			break
		}
		if err != nil {
			return fmt.Errorf("store: reading wal: %w", err)
		}
		advance := int64(len(line))
		if len(bytes.TrimSpace(line)) == 0 {
			good += advance
			continue
		}
		var op walOp
		if uerr := json.Unmarshal(line, &op); uerr != nil {
			if _, peekErr := r.Peek(1); peekErr == io.EOF {
				break // torn final line
			}
			return fmt.Errorf("store: corrupt wal line at offset %d (not the torn tail): %w", good, uerr)
		}
		if aerr := fs.state.apply(op); aerr != nil {
			if _, peekErr := r.Peek(1); peekErr == io.EOF {
				break
			}
			return fmt.Errorf("store: invalid wal op at offset %d (not the torn tail): %w", good, aerr)
		}
		fs.walOps++
		good += advance
	}
	if info, err := f.Stat(); err == nil && good < info.Size() {
		// Crash mid-append: drop the torn tail so the next append starts
		// on a clean line boundary.
		if err := os.Truncate(fs.path(walFile), good); err != nil {
			return fmt.Errorf("store: truncating torn wal tail: %w", err)
		}
	}
	return nil
}

// validate rejects malformed operations before they reach the WAL or
// the state: an invalid op must never be fsynced to disk, where it
// would poison every subsequent replay.
func (op walOp) validate() error {
	switch op.Op {
	case "job", "replica":
		if op.Job == nil || op.Job.ID == "" {
			return fmt.Errorf("store: %s op without record", op.Op)
		}
	case "deljob", "delcache", "delreplica":
	case "cache":
		if op.Key == "" {
			return fmt.Errorf("store: cache op without key")
		}
	default:
		return fmt.Errorf("store: unknown wal op %q", op.Op)
	}
	return nil
}

// apply folds one WAL operation into the state.
func (s *memState) apply(op walOp) error {
	if err := op.validate(); err != nil {
		return err
	}
	switch op.Op {
	case "job":
		s.putJob(*op.Job)
	case "deljob":
		s.delJob(op.ID)
	case "cache":
		s.putCache(op.Key, op.Result)
	case "delcache":
		s.delCache(op.Key)
	case "replica":
		s.putReplica(*op.Job)
	case "delreplica":
		s.delReplica(op.ID)
	}
	return nil
}

func (s *memState) putJob(rec JobRecord) {
	if _, ok := s.jobs[rec.ID]; !ok {
		s.jobOrder = append(s.jobOrder, rec.ID)
	}
	s.jobs[rec.ID] = copyRecord(rec)
}

func (s *memState) delJob(id string) {
	if _, ok := s.jobs[id]; !ok {
		return
	}
	delete(s.jobs, id)
	for i, have := range s.jobOrder {
		if have == id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

func (s *memState) putCache(key string, result json.RawMessage) {
	if _, ok := s.cache[key]; !ok {
		s.cacheOrder = append(s.cacheOrder, key)
	}
	s.cache[key] = CacheEntry{Key: key, Result: rawCopy(result)}
}

func (s *memState) delCache(key string) {
	if _, ok := s.cache[key]; !ok {
		return
	}
	delete(s.cache, key)
	for i, have := range s.cacheOrder {
		if have == key {
			s.cacheOrder = append(s.cacheOrder[:i], s.cacheOrder[i+1:]...)
			break
		}
	}
}

func (s *memState) putReplica(rec JobRecord) {
	if _, ok := s.replicas[rec.ID]; !ok {
		s.replicaOrder = append(s.replicaOrder, rec.ID)
	}
	s.replicas[rec.ID] = copyRecord(rec)
}

func (s *memState) delReplica(id string) {
	if _, ok := s.replicas[id]; !ok {
		return
	}
	delete(s.replicas, id)
	for i, have := range s.replicaOrder {
		if have == id {
			s.replicaOrder = append(s.replicaOrder[:i], s.replicaOrder[i+1:]...)
			break
		}
	}
}

// append writes one op to the WAL, fsyncs it and folds it into the
// in-memory state, compacting when the log has outgrown the state.
func (fs *FileStore) append(op walOp) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return fmt.Errorf("store: closed")
	}
	if err := op.validate(); err != nil {
		return err // never fsync an op replay would choke on
	}
	line, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("store: encoding wal op: %w", err)
	}
	line = append(line, '\n')
	if _, err := fs.wal.Write(line); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		// A short write (ENOSPC, I/O error) may have left a line
		// fragment; roll the file back to the last whole line so a later
		// successful append cannot glue onto the fragment and turn a
		// transient failure into permanent mid-log corruption.
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: appending wal: %w", err)
	}
	if err := fs.wal.Sync(); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: syncing wal: %w", err)
	}
	fs.walSize += int64(len(line))
	if err := fs.state.apply(op); err != nil {
		return err
	}
	fs.walOps++
	live := len(fs.state.jobs) + len(fs.state.cache) + len(fs.state.replicas)
	if fs.walOps >= fs.compact && fs.walOps > 4*live {
		return fs.compactLocked() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
	}
	return nil
}

// ApplyOps implements BatchStore: every op in the batch is marshaled,
// written and fsynced as ONE WAL append — the group commit that lets an
// async writer amortize fsync latency over many terminal transitions.
// Order inside the batch is the WAL order. On a write or sync error the
// file is rolled back to the pre-batch line boundary, so a failed batch
// leaves no partial ops behind and may be retried op by op. Compaction
// is considered once per batch, not once per op, which keeps it off the
// per-transition hot path.
func (fs *FileStore) ApplyOps(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return fmt.Errorf("store: closed")
	}
	wops := make([]walOp, len(ops))
	var buf bytes.Buffer
	for i, op := range ops {
		w := op.wal()
		if err := w.validate(); err != nil {
			return err // never fsync an op replay would choke on
		}
		line, err := json.Marshal(w)
		if err != nil {
			return fmt.Errorf("store: encoding wal op: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		wops[i] = w
	}
	if _, err := fs.wal.Write(buf.Bytes()); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: appending wal batch: %w", err)
	}
	if err := fs.wal.Sync(); err != nil { //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		fs.rollbackLocked() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
		return fmt.Errorf("store: syncing wal batch: %w", err)
	}
	fs.walSize += int64(buf.Len())
	for _, w := range wops {
		if err := fs.state.apply(w); err != nil {
			return err
		}
		fs.walOps++
	}
	live := len(fs.state.jobs) + len(fs.state.cache) + len(fs.state.replicas)
	if fs.walOps >= fs.compact && fs.walOps > 4*live {
		return fs.compactLocked() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
	}
	return nil
}

// rollbackLocked restores the WAL to its last known line boundary after
// a failed append. If even the truncate fails, the store refuses
// further writes — better loudly read-only than silently corrupting.
func (fs *FileStore) rollbackLocked() {
	if err := fs.wal.Truncate(fs.walSize); err != nil {
		fs.closed = true
	}
}

// compactLocked folds the WAL into a fresh snapshot: write the full
// state to a temp file, fsync, rename over snapshot.json, then truncate
// the WAL. Crash-safe at every step — the rename is atomic and the WAL
// still holds every op until after it lands.
func (fs *FileStore) compactLocked() error {
	snap := fs.state.snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	tmp := fs.path(snapshotFile + ".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, fs.path(snapshotFile)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if dir, err := os.Open(fs.dir); err == nil {
		_ = dir.Sync() // persist the rename itself
		dir.Close()
	}
	if err := fs.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating wal: %w", err)
	}
	fs.walOps = 0
	fs.walSize = 0
	return nil
}

func (s *memState) snapshot() *Snapshot {
	snap := &Snapshot{}
	for _, id := range s.jobOrder {
		snap.Jobs = append(snap.Jobs, copyRecord(s.jobs[id]))
	}
	for _, key := range s.cacheOrder {
		entry := s.cache[key]
		snap.Cache = append(snap.Cache, CacheEntry{Key: key, Result: rawCopy(entry.Result)})
	}
	for _, id := range s.replicaOrder {
		snap.Replicas = append(snap.Replicas, copyRecord(s.replicas[id]))
	}
	return snap
}

// PutJob implements JobStore.
func (fs *FileStore) PutJob(rec JobRecord) error {
	r := copyRecord(rec)
	return fs.append(walOp{Op: "job", Job: &r})
}

// DeleteJob implements JobStore.
func (fs *FileStore) DeleteJob(id string) error {
	return fs.append(walOp{Op: "deljob", ID: id})
}

// PutCache implements JobStore.
func (fs *FileStore) PutCache(key string, result json.RawMessage) error {
	return fs.append(walOp{Op: "cache", Key: key, Result: rawCopy(result)})
}

// DeleteCache implements JobStore.
func (fs *FileStore) DeleteCache(key string) error {
	return fs.append(walOp{Op: "delcache", Key: key})
}

// PutReplica implements JobStore.
func (fs *FileStore) PutReplica(rec JobRecord) error {
	r := copyRecord(rec)
	return fs.append(walOp{Op: "replica", Job: &r})
}

// DeleteReplica implements JobStore.
func (fs *FileStore) DeleteReplica(id string) error {
	return fs.append(walOp{Op: "delreplica", ID: id})
}

// Load implements JobStore.
func (fs *FileStore) Load() (*Snapshot, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.state.snapshot(), nil
}

// Close implements JobStore: further writes fail.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return nil
	}
	fs.closed = true
	return fs.wal.Close() //nocmapvet:allow blockingunderlock fs.mu is the store's IO serialization point by design; docs/STATIC_ANALYSIS.md#baselines
}
