package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error a FaultStore returns for an injected fault;
// match with errors.Is to distinguish deliberate chaos from real I/O
// failures in assertions.
var ErrInjected = errors.New("store: injected fault")

// FaultStore wraps a JobStore and injects disk-style faults into its
// mutating operations — the test harness the chaos suite uses to prove
// the server keeps serving (with Stats.StoreErrors counting the
// degradation) when fsyncs fail, writes tear or the disk is slow.
//
// Three independent fault dials, all safe to adjust while the store is
// in use:
//
//   - FailEvery(n): every n-th mutating op returns ErrInjected. With
//     torn writes off, the op does not reach the inner store (a clean
//     fsync failure: nothing durable happened). With SetTorn(true), the
//     op is applied first and the error returned anyway — a write that
//     reached the disk but whose acknowledgment was lost, the case
//     replay idempotency must absorb.
//   - FailNext(n): the next n mutating ops fail, then the store heals.
//   - SetLatency(d): every mutating op sleeps d first (a slow disk).
//
// Load and Close always pass through: boot must be able to read what
// the faults left behind.
type FaultStore struct {
	inner JobStore

	mu        sync.Mutex
	ops       uint64        // mutating ops seen
	failEvery uint64        // every n-th op fails (0: off)
	failNext  int           // the next n ops fail
	latency   time.Duration // pre-op delay
	torn      bool          // apply before failing
	injected  uint64        // faults injected so far
}

// NewFaultStore wraps inner with every fault dial off.
func NewFaultStore(inner JobStore) *FaultStore {
	return &FaultStore{inner: inner}
}

// FailEvery makes every n-th mutating operation fail (0 disables).
func (f *FaultStore) FailEvery(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	f.failEvery = uint64(n)
}

// FailNext makes the next n mutating operations fail.
func (f *FaultStore) FailNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failNext = n
}

// SetLatency delays every mutating operation by d.
func (f *FaultStore) SetLatency(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.latency = d
}

// SetTorn switches injected failures to torn-write mode: the inner op
// is applied before the error is returned.
func (f *FaultStore) SetTorn(torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.torn = torn
}

// Injected returns how many faults have fired.
func (f *FaultStore) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// do runs one mutating op through the fault dials.
func (f *FaultStore) do(op func() error) error {
	f.mu.Lock()
	delay := f.latency
	f.ops++
	fail := false
	if f.failNext > 0 {
		f.failNext--
		fail = true
	} else if f.failEvery > 0 && f.ops%f.failEvery == 0 {
		fail = true
	}
	torn := f.torn
	if fail {
		f.injected++
	}
	f.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	if fail && !torn {
		return ErrInjected
	}
	err := op()
	if fail {
		if err != nil {
			return fmt.Errorf("%w (and inner: %v)", ErrInjected, err)
		}
		return ErrInjected
	}
	return err
}

// PutJob implements JobStore.
func (f *FaultStore) PutJob(rec JobRecord) error {
	return f.do(func() error { return f.inner.PutJob(rec) })
}

// DeleteJob implements JobStore.
func (f *FaultStore) DeleteJob(id string) error {
	return f.do(func() error { return f.inner.DeleteJob(id) })
}

// PutCache implements JobStore.
func (f *FaultStore) PutCache(key string, result json.RawMessage) error {
	return f.do(func() error { return f.inner.PutCache(key, result) })
}

// DeleteCache implements JobStore.
func (f *FaultStore) DeleteCache(key string) error {
	return f.do(func() error { return f.inner.DeleteCache(key) })
}

// PutReplica implements JobStore.
func (f *FaultStore) PutReplica(rec JobRecord) error {
	return f.do(func() error { return f.inner.PutReplica(rec) })
}

// DeleteReplica implements JobStore.
func (f *FaultStore) DeleteReplica(id string) error {
	return f.do(func() error { return f.inner.DeleteReplica(id) })
}

// ApplyOps implements BatchStore. The whole batch counts as ONE
// mutating op against the fault dials — faults are modeled at fsync
// granularity, which is exactly what a batched commit is. A non-torn
// fault fails the batch before it reaches the inner store; a torn fault
// applies it first and loses the acknowledgment. When the inner store
// has no batch fast path the ops are applied one by one inside the
// single fault window.
func (f *FaultStore) ApplyOps(ops []Op) error {
	return f.do(func() error {
		if bs, ok := f.inner.(BatchStore); ok {
			return bs.ApplyOps(ops)
		}
		for _, op := range ops {
			if err := ApplyOp(f.inner, op); err != nil {
				return err
			}
		}
		return nil
	})
}

// ApplyOp routes one batch op through a store's single-op methods — the
// fallback path for stores without a batch fast path, and the retry
// path callers use to isolate a failure after a batch rolled back.
func ApplyOp(s JobStore, op Op) error {
	switch op.Kind {
	case OpPutJob:
		if op.Rec == nil {
			return fmt.Errorf("store: %s op without record", op.Kind)
		}
		return s.PutJob(*op.Rec)
	case OpDeleteJob:
		return s.DeleteJob(op.ID)
	case OpPutCache:
		return s.PutCache(op.Key, op.Result)
	case OpDeleteCache:
		return s.DeleteCache(op.Key)
	case OpPutReplica:
		if op.Rec == nil {
			return fmt.Errorf("store: %s op without record", op.Kind)
		}
		return s.PutReplica(*op.Rec)
	case OpDeleteReplica:
		return s.DeleteReplica(op.ID)
	default:
		return fmt.Errorf("store: unknown op kind %q", op.Kind)
	}
}

// Load implements JobStore; never injected — boot must see the truth.
func (f *FaultStore) Load() (*Snapshot, error) { return f.inner.Load() }

// Unwrap returns the wrapped store, so callers can walk a wrapper
// chain down to the concrete backing store.
func (f *FaultStore) Unwrap() JobStore { return f.inner }

// Close implements JobStore; never injected.
func (f *FaultStore) Close() error { return f.inner.Close() }

// ParseFaultSpec configures a FaultStore from a comma-separated spec —
// the cmd/nocmapd -store-fault flag format the chaos harness drives real
// processes with:
//
//	latency=1ms,fail-every=37,torn=1
//
// Keys: latency (Go duration), fail-every (int), fail-next (int),
// torn (0/1). Unknown keys are an error.
func ParseFaultSpec(f *FaultStore, spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("store: fault spec %q: want key=value", part)
		}
		switch key {
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("store: fault latency %q: %w", val, err)
			}
			f.SetLatency(d)
		case "fail-every":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("store: fault fail-every %q: %w", val, err)
			}
			f.FailEvery(n)
		case "fail-next":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("store: fault fail-next %q: %w", val, err)
			}
			f.FailNext(n)
		case "torn":
			f.SetTorn(val == "1" || val == "true")
		default:
			return fmt.Errorf("store: unknown fault spec key %q", key)
		}
	}
	return nil
}
