package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"
	"time"
)

// TestStoreCompactionCrash is the exec-level half of the compaction
// crash-safety story (wired into make chaos-smoke): for every publish
// step of a compaction pass — begin (post-rotate), folded, tmp
// (post-tmp-write), renamed (post-rename, pre-segment-delete), deleted
// — it re-execs the test binary as a child that SIGKILLs itself at
// that exact step while the main goroutine keeps appending, then
// asserts the reopened store holds a strict prefix of the append order
// (no holes, nothing folded twice), that recovery is deterministic
// (two reopens load byte-identical state), and that the recovered
// store still accepts appends.
func TestStoreCompactionCrash(t *testing.T) {
	if os.Getenv("STORE_CRASH_STEP") != "" {
		t.Skip("helper mode is driven via TestStoreCompactionCrashHelper")
	}
	if testing.Short() {
		t.Skip("exec-level crash suite skipped in -short")
	}
	for _, step := range []string{"begin", "folded", "tmp", "renamed", "deleted"} {
		t.Run(step, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestStoreCompactionCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"STORE_CRASH_STEP="+step,
				"STORE_CRASH_DIR="+dir,
			)
			out, err := cmd.CombinedOutput()
			if err == nil {
				t.Fatalf("helper exited cleanly — the SIGKILL at %q never fired:\n%s", step, out)
			}
			ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus)
			if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
				t.Fatalf("helper died of %v, want SIGKILL:\n%s", err, out)
			}

			fs, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after SIGKILL at %q: %v", step, err)
			}
			first := crashLoadIDs(t, fs)
			firstJSON := loadJSON(t, fs)
			if len(first) < 16 {
				t.Fatalf("recovered only %d jobs — the crash landed before the first compaction trigger", len(first))
			}
			// Prefix property: exactly job-00000..job-(n-1), no holes, no
			// duplicates from re-folding an already-compacted segment.
			seen := make(map[int]bool, len(first))
			for _, id := range first {
				var n int
				if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
					t.Fatalf("unexpected job id %q", id)
				}
				if seen[n] {
					t.Fatalf("job %d recovered twice", n)
				}
				seen[n] = true
			}
			for i := 0; i < len(first); i++ {
				if !seen[i] {
					t.Fatalf("recovered set has a hole at %d (%d jobs recovered)", i, len(first))
				}
			}
			// The recovered store keeps working.
			if err := fs.PutJob(JobRecord{ID: "post-crash", Key: "k", State: StateDone, Seq: 1}); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := fs.DeleteJob("post-crash"); err != nil {
				t.Fatal(err)
			}
			if err := fs.Close(); err != nil {
				t.Fatal(err)
			}
			// Determinism: a second recovery of the same directory loads
			// byte-identical state.
			again, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer again.Close()
			if secondJSON := loadJSON(t, again); !bytes.Equal(firstJSON, secondJSON) {
				t.Fatalf("recovery is not deterministic at %q:\n first  %.200s\n second %.200s", step, firstJSON, secondJSON)
			}
		})
	}
}

func crashLoadIDs(t *testing.T, fs *FileStore) []string {
	t.Helper()
	snap, err := fs.Load()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, 0, len(snap.Jobs))
	for _, j := range snap.Jobs {
		ids = append(ids, j.ID)
	}
	return ids
}

// TestStoreCompactionCrashHelper is the child process: it appends
// distinct jobs as fast as it can with a low compaction trigger and
// SIGKILLs itself from inside the compactor at the step named by
// STORE_CRASH_STEP. It only runs when re-exec'd by
// TestStoreCompactionCrash.
func TestStoreCompactionCrashHelper(t *testing.T) {
	step := os.Getenv("STORE_CRASH_STEP")
	dir := os.Getenv("STORE_CRASH_DIR")
	if step == "" || dir == "" {
		t.Skip("not in helper mode")
	}
	// Distinct jobs never trip the op-count rule (ops == live records),
	// so the byte trigger drives the rotation — a few KB per segment.
	fs, err := OpenConfig(dir, FileConfig{CompactOps: 1 << 30, CompactBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	kills := 1
	if n, err := strconv.Atoi(os.Getenv("STORE_CRASH_PASS")); err == nil && n > 0 {
		kills = n // die on the nth compaction pass
	}
	passes := 0
	fs.compactHook = func(s string) {
		if s == "begin" {
			passes++
		}
		if s == step && passes >= kills {
			syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
			select {} // unreachable: SIGKILL is not catchable
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatal("compaction step never reached — the kill did not fire")
		}
		rec := JobRecord{
			ID:    fmt.Sprintf("job-%05d", i),
			Key:   fmt.Sprintf("key-%05d", i),
			State: StateDone,
			Seq:   uint64(i + 1),
			Result: json.RawMessage(
				fmt.Sprintf(`{"round":%d,"pad":"0123456789abcdef0123456789abcdef"}`, i)),
		}
		if err := fs.PutJob(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}
