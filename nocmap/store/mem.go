package store

import (
	"encoding/json"
	"sync"
)

// MemStore is the in-memory JobStore: the same semantics as the durable
// store without any files — it wraps the exact state machine FileStore
// replays its WAL into, behind a mutex. It backs tests and
// single-process servers that want restart-over-the-same-process replay
// (create one, hand it to a server, close the server, hand the same
// store to its successor).
type MemStore struct {
	mu    sync.Mutex
	state memState
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{state: newMemState()}
}

// PutJob implements JobStore.
func (m *MemStore) PutJob(rec JobRecord) error {
	return m.apply(walOp{Op: "job", Job: &rec})
}

// DeleteJob implements JobStore.
func (m *MemStore) DeleteJob(id string) error {
	return m.apply(walOp{Op: "deljob", ID: id})
}

// PutCache implements JobStore.
func (m *MemStore) PutCache(key string, result json.RawMessage) error {
	return m.apply(walOp{Op: "cache", Key: key, Result: result})
}

// DeleteCache implements JobStore.
func (m *MemStore) DeleteCache(key string) error {
	return m.apply(walOp{Op: "delcache", Key: key})
}

// PutReplica implements JobStore.
func (m *MemStore) PutReplica(rec JobRecord) error {
	return m.apply(walOp{Op: "replica", Job: &rec})
}

// DeleteReplica implements JobStore.
func (m *MemStore) DeleteReplica(id string) error {
	return m.apply(walOp{Op: "delreplica", ID: id})
}

func (m *MemStore) apply(op walOp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state.apply(op)
}

// ApplyOps implements BatchStore: the whole batch folds into the state
// under one lock hold, mirroring FileStore's one-fsync batch.
func (m *MemStore) ApplyOps(ops []Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range ops {
		if err := m.state.apply(op.wal()); err != nil {
			return err
		}
	}
	return nil
}

// Load implements JobStore.
func (m *MemStore) Load() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state.snapshot(), nil
}

// Close implements JobStore; a MemStore has nothing to release.
func (m *MemStore) Close() error { return nil }
