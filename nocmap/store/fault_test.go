package store_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/nocmap/store"
)

// TestReplicaNamespace pins the replica namespace against both
// implementations: replicas live apart from the store's own jobs,
// survive a reopen, and delete independently.
func TestReplicaNamespace(t *testing.T) {
	stores(t, func(t *testing.T, open func(t *testing.T) store.JobStore) {
		s := open(t)
		if err := s.PutJob(rec("own-1", store.StateDone, 1)); err != nil {
			t.Fatal(err)
		}
		replica := rec("s0-job-00000001", store.StateDone, 7)
		replica.Origin = "s0-"
		replica.Result = json.RawMessage(`{"feasible":true}`)
		if err := s.PutReplica(replica); err != nil {
			t.Fatal(err)
		}
		if err := s.PutReplica(rec("s0-job-00000002", store.StateQueued, 0)); err != nil {
			t.Fatal(err)
		}
		snap, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Jobs) != 1 || len(snap.Replicas) != 2 {
			t.Fatalf("snapshot = %d jobs, %d replicas; want 1, 2", len(snap.Jobs), len(snap.Replicas))
		}
		if snap.Replicas[0].Origin != "s0-" || !bytes.Equal(snap.Replicas[0].Result, replica.Result) {
			t.Fatalf("replica did not round trip: %+v", snap.Replicas[0])
		}
		if err := s.DeleteReplica("s0-job-00000002"); err != nil {
			t.Fatal(err)
		}
		if err := s.DeleteReplica("never-existed"); err != nil {
			t.Fatalf("deleting an unknown replica: %v", err)
		}
		snap, err = s.Load()
		if err != nil {
			t.Fatal(err)
		}
		if len(snap.Replicas) != 1 || snap.Replicas[0].ID != "s0-job-00000001" {
			t.Fatalf("replicas after delete = %+v, want the surviving s0-job-00000001", snap.Replicas)
		}
		s.Close()
	})
}

// TestReplicaNamespaceSurvivesReopen pins that a follower restart keeps
// its replicas: the WAL replays the replica namespace too.
func TestReplicaNamespaceSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	replica := rec("s0-job-00000001", store.StateDone, 7)
	replica.Origin = "s0-"
	if err := s.PutReplica(replica); err != nil {
		t.Fatal(err)
	}
	if err := s.PutReplica(rec("s0-job-00000002", store.StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteReplica("s0-job-00000002"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Replicas) != 1 || snap.Replicas[0].ID != "s0-job-00000001" {
		t.Fatalf("replicas after reopen = %+v, want only s0-job-00000001", snap.Replicas)
	}
	if snap.Replicas[0].Origin != "s0-" {
		t.Fatalf("replica origin lost across reopen: %+v", snap.Replicas[0])
	}
}

// TestFaultStoreFailNext pins clean failure injection: the op errors
// with ErrInjected and does not reach the inner store.
func TestFaultStoreFailNext(t *testing.T) {
	inner := store.NewMemStore()
	f := store.NewFaultStore(inner)
	f.FailNext(1)
	err := f.PutJob(rec("job-1", store.StateQueued, 0))
	if !errors.Is(err, store.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	snap, _ := inner.Load()
	if len(snap.Jobs) != 0 {
		t.Fatalf("clean injected failure leaked into the inner store: %+v", snap.Jobs)
	}
	// Healed: the next op lands.
	if err := f.PutJob(rec("job-1", store.StateQueued, 0)); err != nil {
		t.Fatal(err)
	}
	snap, _ = f.Load()
	if len(snap.Jobs) != 1 {
		t.Fatalf("post-heal put missing: %+v", snap.Jobs)
	}
	if f.Injected() != 1 {
		t.Fatalf("Injected = %d, want 1", f.Injected())
	}
}

// TestFaultStoreTorn pins torn-write mode: the error comes back but the
// write actually landed — the lost-acknowledgment case replay
// idempotency must absorb.
func TestFaultStoreTorn(t *testing.T) {
	inner := store.NewMemStore()
	f := store.NewFaultStore(inner)
	f.SetTorn(true)
	f.FailNext(1)
	if err := f.PutJob(rec("job-1", store.StateDone, 1)); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	snap, _ := inner.Load()
	if len(snap.Jobs) != 1 {
		t.Fatal("torn write must reach the inner store before the error")
	}
}

// TestFaultStoreFailEvery pins the periodic dial.
func TestFaultStoreFailEvery(t *testing.T) {
	f := store.NewFaultStore(store.NewMemStore())
	f.FailEvery(3)
	var fails int
	for i := 0; i < 9; i++ {
		if err := f.DeleteJob("nope"); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("fail-every=3 over 9 ops injected %d faults, want 3", fails)
	}
}

// TestParseFaultSpec pins the -store-fault wire format.
func TestParseFaultSpec(t *testing.T) {
	f := store.NewFaultStore(store.NewMemStore())
	if err := store.ParseFaultSpec(f, "latency=1ms,fail-every=2,torn=1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := f.DeleteJob("a"); err != nil { // op 1: no fault, but latency
		t.Fatal(err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("latency dial did not delay the op")
	}
	if err := f.DeleteJob("b"); !errors.Is(err, store.ErrInjected) { // op 2: fault
		t.Fatalf("err = %v, want ErrInjected on the 2nd op", err)
	}
	for _, bad := range []string{"latency", "nonsense=1", "latency=xyz", "fail-every=abc"} {
		if err := store.ParseFaultSpec(store.NewFaultStore(store.NewMemStore()), bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
	// Empty segments are tolerated (trailing commas from shell quoting).
	if err := store.ParseFaultSpec(f, "fail-next=1,"); err != nil {
		t.Fatal(err)
	}
}
