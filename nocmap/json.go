package nocmap

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/topology"
)

// jsonProblem is the wire form of a Problem: the core graph in the
// repository's JSON graph format plus a topology spec. Link bandwidth is
// uniform in the wire form; per-link overrides applied after
// construction do not round-trip.
type jsonProblem struct {
	App      json.RawMessage `json:"app"`
	Topology jsonTopology    `json:"topology"`
}

type jsonTopology struct {
	Kind string  `json:"kind"` // "mesh" or "torus"
	W    int     `json:"w"`
	H    int     `json:"h"`
	BW   float64 `json:"link_bw"` // MB/s, uniform
}

// MarshalJSON serializes the problem as its application graph plus
// topology spec.
func (p *Problem) MarshalJSON() ([]byte, error) {
	if p.app == nil || p.topo == nil {
		return nil, fmt.Errorf("nocmap: marshaling uninitialized problem: %w", ErrNilInput)
	}
	var app bytes.Buffer
	if err := p.app.WriteJSON(&app); err != nil {
		return nil, fmt.Errorf("nocmap: serializing app: %w", err)
	}
	bw := 0.0
	if links := p.topo.Links(); len(links) > 0 {
		bw = links[0].BW
	}
	return json.Marshal(jsonProblem{
		App: json.RawMessage(bytes.TrimSpace(app.Bytes())),
		Topology: jsonTopology{
			Kind: p.topo.Kind.String(),
			W:    p.topo.W,
			H:    p.topo.H,
			BW:   bw,
		},
	})
}

// MaxWireNodes bounds the topology size accepted from the wire form
// (64k nodes — three orders of magnitude beyond the paper's largest
// mesh). Problems built programmatically via NewMesh/NewTorus are not
// capped; the limit exists so a few bytes of hostile JSON cannot make
// a deserializing service allocate an arbitrarily large topology.
const MaxWireNodes = 1 << 16

// UnmarshalJSON rebuilds the problem, re-running the NewProblem
// validation on the decoded pair.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var in jsonProblem
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("nocmap: parsing problem: %w", err)
	}
	// The product check is in division form: w*h can overflow int on
	// 32-bit platforms, which would wave the hostile input through.
	if w, h := in.Topology.W, in.Topology.H; w > MaxWireNodes || h > MaxWireNodes ||
		(w > 0 && h > 0 && w > MaxWireNodes/h) {
		return fmt.Errorf("nocmap: topology %dx%d exceeds the %d-node wire limit: %w",
			w, h, MaxWireNodes, topology.ErrInvalidDimensions)
	}
	app, err := graph.ReadJSON(bytes.NewReader(in.App))
	if err != nil {
		return err
	}
	var kind topology.Kind
	switch in.Topology.Kind {
	case topology.TorusKind.String():
		kind = topology.TorusKind
	case topology.MeshKind.String(), "":
		kind = topology.MeshKind
	default:
		return fmt.Errorf("nocmap: unknown topology kind %q", in.Topology.Kind)
	}
	topo, err := buildTopology(kind, in.Topology.W, in.Topology.H, in.Topology.BW)
	if err != nil {
		return err
	}
	built, err := NewProblem(app, topo)
	if err != nil {
		return err
	}
	*p = *built
	return nil
}
