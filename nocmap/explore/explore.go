// Package explore is the public face of the paper's concluding
// extension: design-space exploration for NoC topology selection. It
// sweeps candidate meshes and tori for an application core graph, maps
// each with NMAP and reports cost, bandwidth, area and power so the
// cheapest feasible topology can be selected.
package explore

import (
	"repro/internal/explore"
	"repro/nocmap"
)

// Aliased sweep types; Design values interoperate with the internal
// driver and carry their full field sets.
type (
	// Candidate names one topology to evaluate.
	Candidate = explore.Candidate
	// Design is one evaluated candidate: mapping cost, bandwidth
	// requirements, area and power.
	Design = explore.Design
	// Options configures the sweep.
	Options = explore.Options
)

// DefaultCandidates proposes meshes and tori able to hold n cores.
func DefaultCandidates(n int) []Candidate { return explore.DefaultCandidates(n) }

// Sweep evaluates every candidate topology for the application and
// returns the designs sorted by communication cost (feasible first).
func Sweep(app *nocmap.CoreGraph, opt Options) ([]Design, error) { return explore.Sweep(app, opt) }

// Best returns the first feasible design of a sweep.
func Best(designs []Design) (Design, error) { return explore.Best(designs) }

// Format renders the designs as a table.
func Format(designs []Design) string { return explore.Format(designs) }
