package client_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/nocmap"
	"repro/nocmap/client"
	"repro/nocmap/httpfault"
	"repro/nocmap/server"
	"repro/nocmap/shard"
)

// routedFixture stands up the smallest real fleet: one nocmapd behind
// an httpfault proxy, fronted by a shard router. Dropping the proxy is
// exactly the scenario Solve's single retry exists for — the router
// answers 502 backend_unavailable, nothing was enqueued.
func routedFixture(t *testing.T) (*httpfault.Proxy, *client.Client) {
	t.Helper()
	svc, err := server.New(server.Config{Pool: 1, QueueSize: 8, CacheSize: 8, IDPrefix: "rt-"})
	if err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(svc.Handler())
	proxy, err := httpfault.New(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(proxy)
	router, err := shard.New(shard.Config{Backends: []string{front.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rs := httptest.NewServer(router.Handler())
	t.Cleanup(func() {
		rs.Close()
		router.Close()
		front.Close()
		backend.Close()
		svc.Close()
	})
	return proxy, client.New(rs.URL)
}

func retryProblem(t *testing.T) *nocmap.Problem {
	t.Helper()
	app := nocmap.NewCoreGraph("retry")
	for i := 1; i < 3; i++ {
		app.Connect(fmt.Sprintf("c%d", i-1), fmt.Sprintf("c%d", i), float64(40+10*i))
	}
	mesh, err := nocmap.NewMesh(2, 2, 2000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := nocmap.NewProblem(app, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSolveRetriesOnceOnBackendUnavailable pins the transparent retry:
// when the fleet blips for exactly one submission — the router answers
// 502 backend_unavailable because its only backend dropped the request
// — Solve retries once and succeeds, invisibly to the caller.
func TestSolveRetriesOnceOnBackendUnavailable(t *testing.T) {
	proxy, c := routedFixture(t)
	// Drop exactly the first proxied request: the initial submission
	// dies, the retry sails through. FailNext makes this deterministic —
	// no mode flip racing the request.
	proxy.FailNext(1)
	res, err := c.Solve(context.Background(), retryProblem(t), server.SolveSpec{}, nil)
	if err != nil {
		t.Fatalf("Solve did not absorb a single fleet blip: %v", err)
	}
	if res == nil || len(res.Assignment) == 0 {
		t.Fatal("retried solve returned no result")
	}
	if _, dropped := proxy.Counts(); dropped != 1 {
		t.Fatalf("proxy dropped %d requests, want exactly the 1 injected", dropped)
	}
}

// TestSolveGivesUpAfterOneRetry pins the other half of the contract:
// one retry, not a retry loop. A fleet that stays down surfaces the
// typed 502 after exactly two submission attempts, handing the policy
// decision back to the caller.
func TestSolveGivesUpAfterOneRetry(t *testing.T) {
	proxy, c := routedFixture(t)
	proxy.SetMode(httpfault.Drop)
	_, err := c.Solve(context.Background(), retryProblem(t), server.SolveSpec{}, nil)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("error = %v, want *client.APIError", err)
	}
	if apiErr.StatusCode != http.StatusBadGateway || apiErr.Payload.Code != server.CodeBackendUnavailable {
		t.Fatalf("error = HTTP %d code %q, want 502 %q",
			apiErr.StatusCode, apiErr.Payload.Code, server.CodeBackendUnavailable)
	}
	if _, dropped := proxy.Counts(); dropped != 2 {
		t.Fatalf("proxy saw %d submission attempts, want exactly 2 (one retry)", dropped)
	}
}
