package client_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/nocmap"
	"repro/nocmap/client"
	"repro/nocmap/server"
)

// start boots a service behind httptest and returns a client on it.
func start(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	svc, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, client.New(ts.URL, client.WithHTTPClient(ts.Client()))
}

// vopdProblem builds the paper's VOPD application on its recommended
// mesh, the way cmd/nmap does.
func vopdProblem(t *testing.T) *nocmap.Problem {
	t.Helper()
	a, err := nocmap.LoadApp("vopd")
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := nocmap.NewMesh(a.W, a.H, a.Graph.TotalWeight()*10)
	if err != nil {
		t.Fatal(err)
	}
	p, err := nocmap.NewProblem(a.Graph, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEndToEndVOPD is the acceptance path: a VOPD problem solved
// through nocmapd via the client must be byte-identical (as JSON) to a
// local nocmap.Solve of the same problem and options — and the
// resubmission must be a recorded cache hit.
func TestEndToEndVOPD(t *testing.T) {
	svc, c := start(t, server.Config{Pool: 2, CacheSize: 8})
	p := vopdProblem(t)

	local, err := nocmap.Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}

	var events int
	remote, err := c.Solve(context.Background(), p, server.SolveSpec{},
		func(server.JobEvent) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	remoteJSON, err := json.Marshal(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Fatalf("remote result differs from local solve:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}

	// The remote assignment revives into a live mapping scoring the
	// same Eq. 7 cost.
	m, err := p.MappingOf(remote.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.CommCost(); got != local.Cost.Comm {
		t.Fatalf("revived mapping cost %v != %v", got, local.Cost.Comm)
	}

	// Resubmission: served from the cache, still byte-identical.
	again, err := c.Solve(context.Background(), p, server.SolveSpec{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	againJSON, _ := json.Marshal(again)
	if !bytes.Equal(localJSON, againJSON) {
		t.Fatal("cached result drifted")
	}
	if st := svc.Stats(); st.CacheHits != 1 {
		t.Fatalf("stats = %+v, want the resubmission recorded as a cache hit", st)
	}
}

// TestSolveSplitRemote round-trips the split-traffic algorithm, whose
// Result carries flows instead of paths.
func TestSolveSplitRemote(t *testing.T) {
	_, c := start(t, server.Config{Pool: 1})
	a, err := nocmap.LoadApp("dsp")
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := nocmap.NewMesh(a.W, a.H, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := nocmap.NewProblem(a.Graph, mesh)
	if err != nil {
		t.Fatal(err)
	}
	spec := server.SolveSpec{Algorithm: "nmap-split", Split: server.SplitMinPaths, Workers: -1}
	local, err := nocmap.Solve(context.Background(), p,
		nocmap.WithAlgorithm("nmap-split"), nocmap.WithSplitPolicy(nocmap.SplitMinPaths),
		nocmap.WithWorkers(-1))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := c.Solve(context.Background(), p, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(local)
	remoteJSON, _ := json.Marshal(remote)
	if !bytes.Equal(localJSON, remoteJSON) {
		t.Fatalf("split solve differs:\nlocal:  %s\nremote: %s", localJSON, remoteJSON)
	}
}

// TestClientCancellation mirrors nocmap.Solve's contract over the wire:
// cancelling the caller's context cancels the remote job and Solve
// returns the salvaged partial result with ctx.Err().
func TestClientCancellation(t *testing.T) {
	_, c := start(t, server.Config{Pool: 1})
	p := vopdProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the first progress event proves the solve started.
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	res, err := c.Solve(ctx, p, server.SolveSpec{Algorithm: "client-test-hold"}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("res = %+v, want the salvaged partial result", res)
	}
}

func init() {
	// client-test-hold parks until cancelled, then surrenders its
	// initial mapping as a partial result — a deterministic stand-in for
	// a long solve.
	nocmap.Register("client-test-hold", func(ctx context.Context, req *nocmap.Request) (*nocmap.Result, error) {
		res, err := req.Finish(req.InitialMapping())
		if err != nil {
			return nil, err
		}
		<-ctx.Done()
		res.Partial = true
		return res, ctx.Err()
	})
}

// TestTypedErrorsSurface pins the client-side error taxonomy.
func TestTypedErrorsSurface(t *testing.T) {
	_, c := start(t, server.Config{Pool: 1})
	p := vopdProblem(t)
	_, err := c.Solve(context.Background(), p, server.SolveSpec{Algorithm: "anneal"}, nil)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *client.APIError", err)
	}
	if apiErr.Payload.Code != server.CodeUnknownAlgorithm {
		t.Fatalf("code = %q, want %q", apiErr.Payload.Code, server.CodeUnknownAlgorithm)
	}

	if _, err := c.Status(context.Background(), "job-00009999"); err == nil {
		t.Fatal("missing job must error")
	} else if !errors.As(err, &apiErr) || apiErr.Payload.Code != server.CodeNotFound {
		t.Fatalf("err = %v, want not_found APIError", err)
	}
}

// TestSubmitWaitEvents exercises the fine-grained verbs: submit, stream
// events, read the final status.
func TestSubmitWaitEvents(t *testing.T) {
	_, c := start(t, server.Config{Pool: 1})
	p := vopdProblem(t)
	st, err := c.Submit(context.Background(), p, server.SolveSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("submit returned no job ID")
	}
	final, err := c.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != server.StateDone {
		t.Fatalf("final state = %q, want done (error %+v)", final.State, final.Error)
	}
	res, err := client.ResultOf(final)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Feasible {
		t.Fatalf("result = %+v, want a feasible VOPD mapping", res)
	}
	if algos, err := c.Algorithms(context.Background()); err != nil || len(algos) == 0 {
		t.Fatalf("algorithms: %v, %v", algos, err)
	}
}
