// Package client is the Go client for nocmapd, the nocmap solve
// service (repro/nocmap/server, command cmd/nocmapd).
//
// Client.Solve mirrors nocmap.Solve across the wire: it submits a
// nocmap.Problem plus a server.SolveSpec, streams progress over
// server-sent events, honors context cancellation by cancelling the
// remote job (returning the salvaged Result.Partial with ctx.Err())
// and, on success, returns a Result byte-identical to solving locally.
// The finer-grained verbs — Submit, Status, Wait, Events, Cancel — are
// exposed for callers managing jobs across round trips; non-2xx
// responses surface as *APIError carrying the server's typed
// ErrorPayload.
//
//	c := client.New("http://localhost:8537")
//	res, err := c.Solve(ctx, problem,
//		server.SolveSpec{Algorithm: "nmap-split", Workers: -1}, nil)
//
// The client works unchanged against a nocmapsh shard router
// (repro/nocmap/shard): submissions are proxied by the router itself,
// while job-ID requests (status, cancel, SSE event streams) come back
// as 307 redirects to the owning backend, which the underlying net/http
// client follows transparently. Custom HTTP clients passed via
// WithHTTPClient should keep redirect following enabled when talking to
// a router.
//
// Command nmap's -remote flag is built on this package.
package client
