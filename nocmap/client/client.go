package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/nocmap"
	"repro/nocmap/server"
)

// Client talks to a nocmapd instance. The zero value is not usable;
// construct with New.
type Client struct {
	base  string
	httpc *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient swaps the underlying *http.Client (timeouts, proxies,
// httptest transports). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// New returns a client for the nocmapd instance at baseURL (e.g.
// "http://localhost:8537").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), httpc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response: the HTTP status plus the server's
// typed payload. Match on Payload.Code (the server.Code... constants).
type APIError struct {
	StatusCode int
	Payload    server.ErrorPayload
}

// Error renders the payload.
func (e *APIError) Error() string {
	return fmt.Sprintf("nocmapd: %s (HTTP %d): %s", e.Payload.Code, e.StatusCode, e.Payload.Message)
}

// do issues one JSON round trip; out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("nocmap/client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("nocmap/client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return fmt.Errorf("nocmap/client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("nocmap/client: decoding response: %w", err)
	}
	return nil
}

// decodeAPIError turns an error response into an *APIError.
func decodeAPIError(resp *http.Response) error {
	var envelope struct {
		Error server.ErrorPayload `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil || envelope.Error.Code == "" {
		envelope.Error = server.ErrorPayload{
			Code:    server.CodeInternal,
			Message: fmt.Sprintf("unexpected response status %s", resp.Status),
		}
	}
	return &APIError{StatusCode: resp.StatusCode, Payload: envelope.Error}
}

// submitBody builds the wire submission for a problem.
func submitBody(p *nocmap.Problem, spec server.SolveSpec) (server.SubmitRequest, error) {
	raw, err := json.Marshal(p)
	if err != nil {
		return server.SubmitRequest{}, fmt.Errorf("nocmap/client: encoding problem: %w", err)
	}
	return server.SubmitRequest{Problem: raw, Options: spec}, nil
}

// Submit enqueues a solve and returns its initial status — state
// "queued", or "done" immediately on a server-side cache hit.
//
// Setting spec.Durability to server.DurabilityReplicated holds the ack
// until the job's record is replicated to a follower: the returned
// status's Durability field reports "replicated" when it was, or
// "async-degraded" when the server had no follower (or the bounded
// wait timed out) and accepted the job with ordinary async durability
// instead.
func (c *Client) Submit(ctx context.Context, p *nocmap.Problem, spec server.SolveSpec) (server.JobStatus, error) {
	var st server.JobStatus
	body, err := submitBody(p, spec)
	if err != nil {
		return st, err
	}
	err = c.do(ctx, http.MethodPost, "/v1/jobs", body, &st)
	return st, err
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Cancel asks the server to cancel a job and returns the status after
// the signal; a running solve may still be unwinding, so follow with
// Wait (or Status) for the final state and the partial result.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Algorithms lists the server's registered algorithm names.
func (c *Client) Algorithms(ctx context.Context) ([]string, error) {
	var out struct {
		Algorithms []string `json:"algorithms"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/algorithms", nil, &out)
	return out.Algorithms, err
}

// Stats fetches the server's counter snapshot.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var st server.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Events consumes a job's server-sent-event stream, invoking fn (when
// non-nil) for every progress event, and returns the final status
// carried by the terminal "done" event.
func (c *Client) Events(ctx context.Context, id string, fn func(server.JobEvent)) (server.JobStatus, error) {
	var final server.JobStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return final, fmt.Errorf("nocmap/client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return final, fmt.Errorf("nocmap/client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return final, decodeAPIError(resp)
	}
	var event string
	var data []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // results can be large
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			switch event {
			case "progress":
				if fn != nil {
					var ev server.JobEvent
					if json.Unmarshal(data, &ev) == nil {
						fn(ev)
					}
				}
			case "done":
				if err := json.Unmarshal(data, &final); err != nil {
					return final, fmt.Errorf("nocmap/client: decoding final status: %w", err)
				}
				return final, nil
			}
			event, data = "", nil
		}
	}
	if err := sc.Err(); err != nil {
		return final, fmt.Errorf("nocmap/client: reading event stream: %w", err)
	}
	return final, fmt.Errorf("nocmap/client: event stream ended before the job finished")
}

// Wait blocks until the job finishes and returns its final status. It
// rides the SSE stream when the transport supports it and degrades to
// polling otherwise.
func (c *Client) Wait(ctx context.Context, id string) (server.JobStatus, error) {
	st, err := c.Events(ctx, id, nil)
	if err == nil || ctx.Err() != nil {
		return st, err
	}
	if _, isAPI := err.(*APIError); isAPI {
		return st, err // the server answered; retrying won't change it
	}
	for { // streaming transport unavailable: poll
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// ResultOf decodes a finished status's result. It returns nil when the
// status carries none (e.g. a job cancelled before it started).
func ResultOf(st server.JobStatus) (*nocmap.Result, error) {
	if len(st.Result) == 0 {
		return nil, nil
	}
	var res nocmap.Result
	if err := json.Unmarshal(st.Result, &res); err != nil {
		return nil, fmt.Errorf("nocmap/client: decoding result: %w", err)
	}
	return &res, nil
}

// Solve submits the problem and blocks until the remote solve finishes,
// mirroring nocmap.Solve's contract across the wire: onProgress (when
// non-nil) receives streamed progress, cancelling ctx cancels the
// remote job and returns the salvaged partial result (Result.Partial)
// with ctx.Err(), a failed job returns its typed *APIError, and a clean
// solve returns a Result identical byte for byte to a local
// nocmap.Solve of the same problem and options.
//
// A 502 "backend_unavailable" submission — the shard router saying no
// backend could take the job just then — is retried once, after a short
// pause. That answer means nothing was enqueued, so the retry cannot
// duplicate work; it papers over exactly one transient fleet blip
// (a backend restarting, a failover mid-promotion) and then gives up,
// surfacing the error for the caller's own policy.
func (c *Client) Solve(ctx context.Context, p *nocmap.Problem, spec server.SolveSpec, onProgress func(server.JobEvent)) (*nocmap.Result, error) {
	st, err := c.Submit(ctx, p, spec)
	if retryableSubmit(err) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(submitRetryPause):
		}
		st, err = c.Submit(ctx, p, spec)
	}
	if err != nil {
		return nil, err
	}
	if st.State != server.StateDone { // not a cache hit: wait it out
		st, err = c.waitOrCancel(ctx, st.ID, onProgress)
		if err != nil {
			if ctx.Err() == nil {
				return nil, err
			}
			// Caller cancelled. waitOrCancel fetched the final status
			// when it could; surface whatever partial result it carries
			// alongside ctx.Err() — never a fabricated server error.
			res, derr := ResultOf(st)
			if derr != nil {
				return nil, err
			}
			return res, err
		}
	}
	res, derr := ResultOf(st)
	if derr != nil {
		return nil, derr
	}
	switch st.State {
	case server.StateDone:
		return res, nil
	case server.StateCancelled:
		return res, &APIError{StatusCode: http.StatusConflict, Payload: payloadOf(st)}
	default:
		return res, &APIError{StatusCode: http.StatusUnprocessableEntity, Payload: payloadOf(st)}
	}
}

// submitRetryPause is how long Solve waits before its one retry of an
// "unavailable" submission — enough for a router failover to settle,
// short enough to stay unnoticeable next to a solve.
const submitRetryPause = 100 * time.Millisecond

// retryableSubmit reports whether a submission error is the typed
// "no backend could take this" answer that is safe to retry: the
// request was never enqueued anywhere.
func retryableSubmit(err error) bool {
	apiErr, ok := err.(*APIError)
	return ok && apiErr.StatusCode == http.StatusBadGateway &&
		apiErr.Payload.Code == server.CodeBackendUnavailable
}

// payloadOf extracts a finished status's error payload, synthesizing
// one when the server omitted it.
func payloadOf(st server.JobStatus) server.ErrorPayload {
	if st.Error != nil {
		return *st.Error
	}
	return server.ErrorPayload{Code: server.CodeInternal,
		Message: fmt.Sprintf("job %s finished %s", st.ID, st.State)}
}

// waitOrCancel waits for the job; if ctx is cancelled first it cancels
// the remote job and fetches the final (possibly partial) status with a
// short grace context.
func (c *Client) waitOrCancel(ctx context.Context, id string, onProgress func(server.JobEvent)) (server.JobStatus, error) {
	st, err := c.Events(ctx, id, onProgress)
	if err == nil {
		return st, nil
	}
	if ctx.Err() == nil {
		if _, isAPI := err.(*APIError); isAPI {
			return st, err
		}
		return c.Wait(ctx, id) // stream broke: fall back to polling
	}
	// Caller cancelled: propagate to the server, then collect the final
	// status (the partial result) on a grace context — detached from the
	// dead ctx's cancellation but keeping its values.
	grace, done := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
	defer done()
	if _, cerr := c.Cancel(grace, id); cerr != nil {
		return st, ctx.Err()
	}
	final, werr := c.Wait(grace, id)
	if werr != nil {
		return st, ctx.Err()
	}
	return final, ctx.Err()
}
