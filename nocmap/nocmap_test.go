package nocmap

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
)

func vopdProblem(t *testing.T) *Problem {
	t.Helper()
	app, err := LoadApp("vopd")
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(app.W, app.H, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(app.Graph, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func engineFor(t *testing.T, p *Problem) *core.Problem {
	t.Helper()
	eng, err := core.NewProblem(p.App(), p.Topology())
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestSolveMatchesEngine asserts every built-in algorithm produces,
// through the public front door, exactly the mapping the engine's native
// entry point produces.
func TestSolveMatchesEngine(t *testing.T) {
	ctx := context.Background()
	p := vopdProblem(t)

	want := map[string][]int{}
	eng := engineFor(t, p)
	want["nmap-single"] = assignmentOf(eng.MapSinglePath().Mapping, p.App().N())
	want["pmap"] = assignmentOf(baseline.PMAP(eng), p.App().N())
	want["gmap"] = assignmentOf(baseline.GMAP(eng), p.App().N())
	want["pbb"] = assignmentOf(baseline.PBB(eng, baseline.DefaultPBBConfig()), p.App().N())
	split, err := eng.MapWithSplitting(core.SplitAllPaths)
	if err != nil {
		t.Fatal(err)
	}
	want["nmap-split"] = assignmentOf(split.Mapping, p.App().N())

	for algo, expect := range want {
		res, err := Solve(ctx, p, WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Algorithm != algo {
			t.Fatalf("%s: result stamped %q", algo, res.Algorithm)
		}
		if res.Partial {
			t.Fatalf("%s: uncancelled solve marked partial", algo)
		}
		for v, u := range expect {
			if res.Assignment[v] != u {
				t.Fatalf("%s: core %d on node %d, engine put it on %d",
					algo, v, res.Assignment[v], u)
			}
		}
		if m := res.Mapping(); m == nil || !m.Complete() || !m.Valid() {
			t.Fatalf("%s: result mapping invalid", algo)
		}
		if res.Cost.Comm <= 0 || math.IsInf(res.Cost.Comm, 0) {
			t.Fatalf("%s: degenerate comm cost %g", algo, res.Cost.Comm)
		}
	}
}

// TestSolveWorkersBitIdentical asserts WithWorkers never changes the
// result.
func TestSolveWorkersBitIdentical(t *testing.T) {
	ctx := context.Background()
	p := vopdProblem(t)
	seq, err := Solve(ctx, p, WithAlgorithm("nmap-single"))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(ctx, p, WithAlgorithm("nmap-single"), WithWorkers(-1))
	if err != nil {
		t.Fatal(err)
	}
	for v := range seq.Assignment {
		if seq.Assignment[v] != par.Assignment[v] {
			t.Fatalf("workers moved core %d", v)
		}
	}
	if seq.Cost != par.Cost {
		t.Fatalf("workers changed cost: %+v vs %+v", seq.Cost, par.Cost)
	}
}

// TestSolveUnknownAlgorithm asserts the typed registry error and that it
// names the known algorithms.
func TestSolveUnknownAlgorithm(t *testing.T) {
	p := vopdProblem(t)
	_, err := Solve(context.Background(), p, WithAlgorithm("simulated-annealing"))
	if !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
	for _, name := range []string{"nmap-single", "nmap-split", "pmap", "gmap", "pbb"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %s", err, name)
		}
	}
}

// TestAlgorithmsListsBuiltins asserts the registry reports the built-ins
// sorted.
func TestAlgorithmsListsBuiltins(t *testing.T) {
	names := Algorithms()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range []string{"nmap-single", "nmap-split", "pmap", "gmap", "pbb"} {
		if !have[n] {
			t.Fatalf("built-in %s missing from %v", n, names)
		}
	}
}

// TestRegisterCustomAlgorithm exercises the extension surface: a custom
// algorithm built from the Request helpers solves and packages like a
// built-in.
func TestRegisterCustomAlgorithm(t *testing.T) {
	Register("test-greedy", func(ctx context.Context, req *Request) (*Result, error) {
		return req.Finish(req.InitialMapping())
	})
	res, err := Solve(context.Background(), vopdProblem(t), WithAlgorithm("test-greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "test-greedy" || !res.Feasible {
		t.Fatalf("custom algorithm result wrong: %+v", res)
	}
	if res.Routing == nil || res.Routing.Mode != ModeSingleMinPath {
		t.Fatal("Finish must score under single min-path routing")
	}
}

// TestSolveBandwidthCap asserts the cap reaches the solver (a capped
// VOPD run under 250 MB/s links cannot be single-path feasible) and
// leaves the problem's own topology untouched.
func TestSolveBandwidthCap(t *testing.T) {
	p := vopdProblem(t)
	res, err := Solve(context.Background(), p,
		WithAlgorithm("nmap-single"), WithBandwidthCap(250))
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("250 MB/s links cannot carry VOPD's 500 MB/s edge on one path")
	}
	if got := p.Topology().Links()[0].BW; got != 1e9 {
		t.Fatalf("cap mutated the problem's topology: %g", got)
	}
	if _, err := Solve(context.Background(), p, WithBandwidthCap(-1)); !errors.Is(err, ErrInvalidBandwidth) {
		t.Fatalf("negative cap: err = %v, want ErrInvalidBandwidth", err)
	}
}

// TestSolveSplitPolicies asserts both split regimes run and order as the
// paper requires (all-path bandwidth <= min-path bandwidth).
func TestSolveSplitPolicies(t *testing.T) {
	app, err := LoadApp("dsp")
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := NewMesh(app.W, app.H, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(app.Graph, mesh)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	all, err := Solve(ctx, p, WithAlgorithm("nmap-split"), WithSplitPolicy(SplitAllPaths))
	if err != nil {
		t.Fatal(err)
	}
	min, err := Solve(ctx, p, WithAlgorithm("nmap-split"), WithSplitPolicy(SplitMinPaths))
	if err != nil {
		t.Fatal(err)
	}
	if all.Routing.Mode != ModeSplitAllPaths || min.Routing.Mode != ModeSplitMinPaths {
		t.Fatalf("modes wrong: %s, %s", all.Routing.Mode, min.Routing.Mode)
	}
	if !all.Feasible || !min.Feasible {
		t.Fatal("DSP with unlimited bandwidth must be split-feasible")
	}
	m := all.Mapping()
	bwAll, err := p.MinBandwidth(m, RouteSplitAllPaths)
	if err != nil {
		t.Fatal(err)
	}
	bwMin, err := p.MinBandwidth(m, RouteSplitMinPaths)
	if err != nil {
		t.Fatal(err)
	}
	if bwAll > bwMin+1e-6 {
		t.Fatalf("all-path split needs %g > min-path %g", bwAll, bwMin)
	}
}

// TestSolveProgressEvents asserts WithProgress streams events for the
// sweep algorithms and PBB.
func TestSolveProgressEvents(t *testing.T) {
	p := vopdProblem(t)
	var events []Event
	_, err := Solve(context.Background(), p, WithProgress(func(ev Event) {
		events = append(events, ev)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("expected initialize + sweep events, got %d", len(events))
	}
	if events[0].Phase != "initialize" || events[0].Algorithm != "nmap-single" {
		t.Fatalf("first event wrong: %+v", events[0])
	}
	sweeps := 0
	for _, ev := range events[1:] {
		if ev.Phase == "sweep" {
			sweeps++
		}
	}
	if sweeps != p.Topology().N() {
		t.Fatalf("saw %d sweep events, want %d", sweeps, p.Topology().N())
	}

	events = nil
	_, err = Solve(context.Background(), p, WithAlgorithm("pbb"),
		WithPBBBudget(100, 500), WithProgress(func(ev Event) {
			events = append(events, ev)
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0].Phase != "expand" {
		t.Fatalf("PBB progress missing: %d events", len(events))
	}
}

// TestMappingOfRoundTrip asserts assignments revive into equivalent
// mappings and invalid ones are rejected.
func TestMappingOfRoundTrip(t *testing.T) {
	p := vopdProblem(t)
	res, err := Solve(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.MappingOf(res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommCost() != res.Cost.Comm {
		t.Fatalf("revived mapping cost %g != %g", m.CommCost(), res.Cost.Comm)
	}
	if _, err := p.MappingOf([]int{1, 2, 3}); err == nil {
		t.Fatal("short assignment must be rejected")
	}
	bad := append([]int(nil), res.Assignment...)
	bad[0] = bad[1] // two cores on one node
	if _, err := p.MappingOf(bad); err == nil {
		t.Fatal("conflicting assignment must be rejected")
	}
}
