GO ?= go

# Allocation ceilings the kernel benches must hold (see cmd/benchjson);
# CI fails the build when any regresses.
BENCH_GATES = MapSinglePathSwapDelta<=0,RouteSinglePath<=0,PBBVOPD<=2000

.PHONY: build test race bench bench-json bench-gate bench-service bench-service-gate bench-store-compact experiments apicheck api-update importgate linkcheck server-smoke fuzz-smoke chaos-smoke chaos-smoke-r2 cover nocmapvet lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/baseline/ -run 'Race|Parallel|Workers'
	$(GO) test -race ./nocmap/server/ ./nocmap/client/ ./nocmap/shard/ ./nocmap/store/ ./nocmap/httpfault/

# Short deterministic-budget fuzz pass over the wire formats and the
# request decoder (seed corpora live in testdata/fuzz/). CI runs this;
# drop the -fuzztime for a real fuzzing session.
FUZZTIME = 10s
fuzz-smoke:
	$(GO) test ./nocmap -run '^$$' -fuzz FuzzProblemJSONRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./nocmap -run '^$$' -fuzz FuzzResultJSONRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./nocmap/server -run '^$$' -fuzz FuzzParseSubmit -fuzztime $(FUZZTIME)

# Per-package coverage floors (scripts/cover_thresholds.txt). CI fails
# when nocmap, nocmap/server, nocmap/store or nocmap/shard drop below
# their recorded baselines.
cover:
	bash scripts/cover_gate.sh

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem .

# Write the machine-readable kernel bench summary (ns/op, allocs/op) so
# the perf trajectory is tracked across PRs.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH.json

# Bench smoke with allocs/op regression gates on the hot kernels.
bench-gate:
	$(GO) run ./cmd/benchjson -out BENCH.json -gate '$(BENCH_GATES)'

# Service-level load benchmark: boot a durable nocmapd, drive it with
# cmd/nocmapload at a sustained seeded request rate, and record jobs/sec
# + P50/P85/P99 into BENCH.json's "service" section — once per store
# mode, so the async group-commit writer and the fsync-per-record
# baseline are always measured side by side (behind a 1ms injected
# fsync latency; see scripts/bench_service.sh). Tunables match the
# script.
SERVICE_RPS ?= 900
SERVICE_DURATION ?= 5s
bench-service:
	bash scripts/bench_service.sh $(SERVICE_RPS) $(SERVICE_DURATION)

# XmR control-chart gate over the recorded service runs: the newest run
# of each name must sit inside the natural process limits of its own
# history (jobs/sec lower limit, P99 upper limit). With fewer than 4
# prior runs it records without gating.
bench-service-gate: bench-service
	$(GO) run ./cmd/nocmapload -gate solve-group
	$(GO) run ./cmd/nocmapload -gate solve-sync

# Store-level large-volume benchmark: seed a multi-thousand-record
# FileStore, force a throttled multi-second compaction pass, and gate
# p99 single-op append latency DURING the pass at <= 2x the idle
# baseline (plus record the run into BENCH.json's "store" section).
# Proves appends never stall behind snapshot IO. CI runs this.
bench-store-compact:
	STORE_BENCH_OUT=$(abspath BENCH.json) $(GO) test -count=1 -run TestAppendLatencyDuringCompaction -v ./nocmap/store/

experiments:
	$(GO) run ./cmd/experiments

# Public packages whose go doc surface is pinned by api/nocmap.golden.txt.
API_PKGS = ./nocmap ./nocmap/experiments ./nocmap/explore ./nocmap/server ./nocmap/client ./nocmap/store ./nocmap/shard ./nocmap/httpfault

# Diff the public API (go doc -all) against the committed golden dump, so
# accidental surface changes fail CI; regenerate intentionally with
# `make api-update`.
apicheck:
	@for p in $(API_PKGS); do $(GO) doc -all $$p; done > .api.out
	@diff -u api/nocmap.golden.txt .api.out \
		|| (echo "FAIL: public API drifted from api/nocmap.golden.txt (run 'make api-update' if intentional)"; rm -f .api.out; exit 1)
	@rm -f .api.out
	@echo "api surface OK"

api-update:
	@mkdir -p api
	@for p in $(API_PKGS); do $(GO) doc -all $$p; done > api/nocmap.golden.txt
	@echo "wrote api/nocmap.golden.txt"

# The repo's own analyzer suite (internal/analysis + cmd/nocmapvet):
# lock/fsync discipline, determinism in the reproduction kernels,
# context propagation on request paths, and the import gate. Exits
# non-zero on any unbaselined finding; see docs/STATIC_ANALYSIS.md.
nocmapvet:
	$(GO) run ./cmd/nocmapvet ./...

# Fail when a binary, example or the service layer bypasses the public
# API: everything under cmd/ and examples/, plus the nocmapd server and
# its client, must import repro/nocmap..., never repro/internal/...
# Analyzer-backed (this replaced a shell grep): it resolves real import
# declarations under the build's own file set — tags respected, _test.go
# files included, comments mentioning "repro/internal/..." ignored.
importgate:
	$(GO) run ./cmd/nocmapvet -importgate ./...
	@echo "import gate OK"

# Formatting and vet are blocking everywhere; staticcheck + govulncheck
# run at the versions pinned in scripts/lint.sh when installed (CI
# installs them; offline machines skip with a notice).
lint:
	bash scripts/lint.sh

# Fail on dead relative links in README.md and docs/ (runs as part of
# `go test .` too, as TestDocLinks).
linkcheck:
	$(GO) test -run TestDocLinks .

# Replicated-fleet chaos test under the race detector: nocmapsh + 3
# durable nocmapd processes, sustained load, SIGKILL a backend
# mid-solve, assert zero lost results or queued jobs, byte-identical
# replayed responses, and anti-entropy convergence after the reboot.
# CI runs this.
chaos-smoke:
	$(GO) test -race -count=1 ./nocmap/shard/ -run TestChaosFleetE2E -timeout 420s -v
	$(GO) test -race -count=1 ./nocmap/store/ -run TestStoreCompactionCrash -timeout 120s -v

# Quorum-durability chaos gate under the race detector: nocmapsh with
# -replication-factor 2 + 4 durable nocmapd processes, sustained load
# with durability=replicated baselines, then SIGKILL a backend AND its
# first ring successor. Asserts every replicated-acked result survives
# byte-identical on the second successor, queued jobs re-run, the fleet
# serves through the double outage, and both reboots reconcile. CI runs
# this next to chaos-smoke.
chaos-smoke-r2:
	$(GO) test -race -count=1 ./nocmap/shard/ -run TestChaosDoubleFailureE2E -timeout 480s -v

# Boot a real nocmapd process and drive the HTTP API end to end with
# curl: health, a synchronous solve, an async submit/poll round trip, a
# recorded cache hit, durable-store crash recovery, and a sharded
# deployment (nocmapsh router + 2 backends). CI runs this.
server-smoke:
	bash scripts/server_smoke.sh
