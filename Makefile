GO ?= go

# Allocation ceilings the kernel benches must hold (see cmd/benchjson);
# CI fails the build when any regresses.
BENCH_GATES = MapSinglePathSwapDelta<=0,RouteSinglePath<=0,PBBVOPD<=2000

.PHONY: build test race bench bench-json bench-gate experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/baseline/ -run 'Race|Parallel|Workers'

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem .

# Write the machine-readable kernel bench summary (ns/op, allocs/op) so
# the perf trajectory is tracked across PRs.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json

# Bench smoke with allocs/op regression gates on the hot kernels.
bench-gate:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -gate '$(BENCH_GATES)'

experiments:
	$(GO) run ./cmd/experiments
