GO ?= go

# Allocation ceilings the kernel benches must hold (see cmd/benchjson);
# CI fails the build when any regresses.
BENCH_GATES = MapSinglePathSwapDelta<=0,RouteSinglePath<=0,PBBVOPD<=2000

.PHONY: build test race bench bench-json bench-gate experiments apicheck api-update importgate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/baseline/ -run 'Race|Parallel|Workers'

bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x -benchmem .

# Write the machine-readable kernel bench summary (ns/op, allocs/op) so
# the perf trajectory is tracked across PRs.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json

# Bench smoke with allocs/op regression gates on the hot kernels.
bench-gate:
	$(GO) run ./cmd/benchjson -out BENCH_PR2.json -gate '$(BENCH_GATES)'

experiments:
	$(GO) run ./cmd/experiments

# Public packages whose go doc surface is pinned by api/nocmap.golden.txt.
API_PKGS = ./nocmap ./nocmap/experiments ./nocmap/explore

# Diff the public API (go doc -all) against the committed golden dump, so
# accidental surface changes fail CI; regenerate intentionally with
# `make api-update`.
apicheck:
	@for p in $(API_PKGS); do $(GO) doc -all $$p; done > .api.out
	@diff -u api/nocmap.golden.txt .api.out \
		|| (echo "FAIL: public API drifted from api/nocmap.golden.txt (run 'make api-update' if intentional)"; rm -f .api.out; exit 1)
	@rm -f .api.out
	@echo "api surface OK"

api-update:
	@mkdir -p api
	@for p in $(API_PKGS); do $(GO) doc -all $$p; done > api/nocmap.golden.txt
	@echo "wrote api/nocmap.golden.txt"

# Fail when a binary or example bypasses the public API: everything under
# cmd/ and examples/ must import repro/nocmap..., never repro/internal/...
importgate:
	@if grep -rn '"repro/internal/' cmd examples; then \
		echo "FAIL: cmd/ and examples/ must use the public nocmap API, not repro/internal"; exit 1; \
	fi
	@echo "import gate OK"
