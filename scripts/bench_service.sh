#!/usr/bin/env bash
# Service-level load benchmark: boot a durable nocmapd once per store
# mode ("group": the async group-commit writer; "sync": the
# fsync-per-record baseline), drive each with cmd/nocmapload's seeded
# deterministic request stream at a sustained rate, and record jobs/sec
# + P50/P85/P99 latency into BENCH.json's "service" section. The result
# cache is disabled so every request exercises the store write path —
# the regime the two modes differ in — and the store runs behind a 1ms
# injected fsync latency so the disk cost is a realistic SSD's rather
# than the CI host's page cache: with it, the sync baseline saturates
# near 1000 records/sec while group commit amortizes the same disk
# across whole batches. `make bench-service` runs this;
# `make bench-service-gate` adds the XmR control-chart check on top.
#
#   scripts/bench_service.sh [RPS] [DURATION] [OUT]
set -euo pipefail
cd "$(dirname "$0")/.."

rps=${1:-900}
duration=${2:-5s}
out=${3:-BENCH.json}

workdir=$(mktemp -d)
bin="$workdir/nocmapd"
loadbin="$workdir/nocmapload"
cleanup() {
    [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# wait_addr LOGFILE PID -> echoes the base URL once the process logs it.
wait_addr() {
    local logfile=$1 pid=$2 base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$logfile" | head -1)
        [[ -n "$base" ]] && { echo "$base"; return 0; }
        kill -0 "$pid" 2>/dev/null || { echo "FAIL: process died:" >&2; cat "$logfile" >&2; return 1; }
        sleep 0.1
    done
    echo "FAIL: process never reported its address:" >&2; cat "$logfile" >&2; return 1
}

echo "== build"
go build -o "$bin" ./cmd/nocmapd
go build -o "$loadbin" ./cmd/nocmapload

for mode in group sync; do
    echo "== bench-service: store-mode=$mode rps=$rps duration=$duration"
    storedir="$workdir/store-$mode"
    log="$workdir/nocmapd-$mode.log"
    "$bin" -addr 127.0.0.1:0 -store "$storedir" -store-mode "$mode" \
        -store-fault latency=1ms -cache -1 >"$log" 2>&1 &
    server_pid=$!
    base=$(wait_addr "$log" "$server_pid")
    "$loadbin" -url "$base" -rps "$rps" -duration "$duration" \
        -name "solve-$mode" -store-mode "$mode" -out "$out"
    kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
done
echo "== bench-service: recorded into $out"
