#!/usr/bin/env bash
# Smoke test for nocmapd: boot the real binary on an ephemeral port and
# drive the HTTP API with curl — health, a synchronous solve, an async
# submit/status round trip, a recorded cache hit, a durable-store
# restart, and a sharded deployment (nocmapsh router fronting two
# backends). CI runs this via `make server-smoke`; it needs only bash,
# curl and the Go toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/nocmapd"
shbin="$workdir/nocmapsh"
log="$workdir/nocmapd.log"
pids=()
cleanup() {
    [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
    for pid in "${pids[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT

# wait_addr LOGFILE PID -> echoes the base URL once the process logs it.
wait_addr() {
    local logfile=$1 pid=$2 base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$logfile" | head -1)
        [[ -n "$base" ]] && { echo "$base"; return 0; }
        kill -0 "$pid" 2>/dev/null || { echo "FAIL: process died:" >&2; cat "$logfile" >&2; return 1; }
        sleep 0.1
    done
    echo "FAIL: process never reported its address:" >&2; cat "$logfile" >&2; return 1
}

echo "== build"
go build -o "$bin" ./cmd/nocmapd
go build -o "$shbin" ./cmd/nocmapsh

echo "== start"
"$bin" -addr 127.0.0.1:0 -pool 2 >"$log" 2>&1 &
server_pid=$!
base=$(wait_addr "$log" "$server_pid")
echo "   $base"

fail() { echo "FAIL: $1"; echo "--- response: $2"; exit 1; }

echo "== healthz"
health=$(curl -fsS "$base/healthz")
grep -q '"status":"ok"' <<<"$health" || fail "healthz" "$health"

problem='{
  "problem": {
    "app": {"edges": [
      {"from": "cpu", "to": "mem", "bw": 400},
      {"from": "mem", "to": "dsp", "bw": 120},
      {"from": "dsp", "to": "cpu", "bw": 80}]},
    "topology": {"kind": "mesh", "w": 2, "h": 2, "link_bw": 1000}
  },
  "options": {"algorithm": "nmap-single"}
}'

echo "== synchronous solve"
solved=$(curl -fsS "$base/v1/solve" -d "$problem")
grep -q '"state":"done"' <<<"$solved" || fail "sync solve did not finish done" "$solved"
grep -q '"feasible":true' <<<"$solved" || fail "sync solve not feasible" "$solved"

echo "== repeated solve is a cache hit"
again=$(curl -fsS "$base/v1/solve" -d "$problem")
grep -q '"cache_hit":true' <<<"$again" || fail "resubmission was not a cache hit" "$again"
stats=$(curl -fsS "$base/v1/stats")
grep -q '"cache_hits":1' <<<"$stats" || fail "stats did not record the cache hit" "$stats"

echo "== async submit / status / events"
job=$(curl -fsS "$base/v1/jobs" -d "${problem/nmap-single/nmap-split}")
id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$job")
[[ -n "$id" ]] || fail "submit returned no job id" "$job"
status=""
for _ in $(seq 1 100); do
    status=$(curl -fsS "$base/v1/jobs/$id")
    grep -q '"state":"done"' <<<"$status" && break
    grep -qE '"state":"(failed|cancelled)"' <<<"$status" && fail "async job ended badly" "$status"
    sleep 0.1
done
grep -q '"state":"done"' <<<"$status" || fail "async job never finished" "$status"
events=$(curl -fsS "$base/v1/jobs/$id/events")
grep -q '^event: done' <<<"$events" || fail "event stream had no done event" "$events"

echo "== typed error on an infeasible problem"
bad=$(curl -sS "$base/v1/jobs" -d '{
  "problem": {
    "app": {"edges": [{"from": "a", "to": "b", "bw": 1000}]},
    "topology": {"kind": "mesh", "w": 2, "h": 2, "link_bw": 100}}}')
grep -q '"code":"infeasible_bandwidth"' <<<"$bad" || fail "infeasible problem not typed" "$bad"

echo "== graceful shutdown"
kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""

echo "== durable store: results survive a hard restart"
storedir="$workdir/store"
dlog="$workdir/durable.log"
"$bin" -addr 127.0.0.1:0 -pool 1 -store "$storedir" >"$dlog" 2>&1 &
dpid=$!; pids+=("$dpid")
dbase=$(wait_addr "$dlog" "$dpid")
first=$(curl -fsS "$dbase/v1/solve" -d "$problem")
grep -q '"state":"done"' <<<"$first" || fail "durable solve" "$first"
jobid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$first")
kill -9 "$dpid"; wait "$dpid" 2>/dev/null || true
dlog2="$workdir/durable2.log"
"$bin" -addr 127.0.0.1:0 -pool 1 -store "$storedir" >"$dlog2" 2>&1 &
dpid=$!; pids+=("$dpid")
dbase=$(wait_addr "$dlog2" "$dpid")
restored=$(curl -fsS "$dbase/v1/jobs/$jobid")
grep -q '"state":"done"' <<<"$restored" || fail "restored job lost after SIGKILL+reboot" "$restored"
dstats=$(curl -fsS "$dbase/v1/stats")
grep -q '"restored":1' <<<"$dstats" || fail "restart did not report the restored job" "$dstats"
kill -TERM "$dpid"; wait "$dpid" 2>/dev/null || true

echo "== sharded deployment: nocmapsh router + 2 backends"
b0log="$workdir/b0.log"; b1log="$workdir/b1.log"; rlog="$workdir/router.log"
"$bin" -addr 127.0.0.1:0 -pool 1 -id-prefix s0- >"$b0log" 2>&1 &
b0pid=$!; pids+=("$b0pid")
"$bin" -addr 127.0.0.1:0 -pool 1 -id-prefix s1- >"$b1log" 2>&1 &
b1pid=$!; pids+=("$b1pid")
b0=$(wait_addr "$b0log" "$b0pid")
b1=$(wait_addr "$b1log" "$b1pid")
"$shbin" -addr 127.0.0.1:0 -backends "$b0,$b1" >"$rlog" 2>&1 &
rpid=$!; pids+=("$rpid")
router=$(wait_addr "$rlog" "$rpid")
echo "   router $router -> $b0 + $b1"

rhealth=$(curl -fsS "$router/healthz")
grep -q '"status":"ok"' <<<"$rhealth" || fail "router health" "$rhealth"

routed=$(curl -fsS "$router/v1/solve" -d "$problem")
grep -q '"state":"done"' <<<"$routed" || fail "routed solve" "$routed"
routed_again=$(curl -fsS "$router/v1/solve" -d "$problem")
grep -q '"cache_hit":true' <<<"$routed_again" || fail "routed resubmission missed its backend cache (routing unstable?)" "$routed_again"

# Job-ID requests come back as 307 redirects to the owning backend;
# curl -L follows them just like the Go client does.
rjob=$(curl -fsS "$router/v1/jobs" -d "${problem/nmap-single/gmap}")
rid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$rjob")
[[ "$rid" == s0-* || "$rid" == s1-* ]] || fail "routed job id carries no shard prefix" "$rjob"
rstatus=""
for _ in $(seq 1 100); do
    rstatus=$(curl -fsSL "$router/v1/jobs/$rid")
    grep -q '"state":"done"' <<<"$rstatus" && break
    sleep 0.1
done
grep -q '"state":"done"' <<<"$rstatus" || fail "routed job never finished through the redirect" "$rstatus"

mstats=$(curl -fsS "$router/v1/stats")
grep -q '"shards":\[' <<<"$mstats" || fail "merged stats missing shard breakdown" "$mstats"
grep -q '"cache_hits":1' <<<"$mstats" || fail "merged stats missing the fleet cache hit" "$mstats"
malgos=$(curl -fsS "$router/v1/algorithms")
grep -q 'nmap-split' <<<"$malgos" || fail "merged algorithms" "$malgos"

# Failover: kill one backend; submissions must keep succeeding.
kill -9 "$b1pid"; wait "$b1pid" 2>/dev/null || true
survive=$(curl -fsS "$router/v1/solve" -d "${problem/nmap-single/pmap}")
grep -q '"state":"done"' <<<"$survive" || fail "solve after backend loss" "$survive"
rhealth=$(curl -fsS "$router/healthz")
grep -q '"status":"degraded"' <<<"$rhealth" || fail "router health after backend loss" "$rhealth"

echo "== replicated fleet: kill one backend, its replicas keep answering"
# Two durable backends behind a PROBING router: the router pushes each
# backend's replication target (its ring successor), detects a dead
# backend, promotes its replicas on the successor, and reconciles it
# when it comes back. This is the walkthrough from docs/SERVER.md
# "Replication & failover".
r0log="$workdir/r0.log"; r1log="$workdir/r1.log"; rr_log="$workdir/rrouter.log"
"$bin" -addr 127.0.0.1:0 -pool 1 -id-prefix r0- -store "$workdir/rstore0" >"$r0log" 2>&1 &
r0pid=$!; pids+=("$r0pid")
"$bin" -addr 127.0.0.1:0 -pool 1 -id-prefix r1- -store "$workdir/rstore1" >"$r1log" 2>&1 &
r1pid=$!; pids+=("$r1pid")
r0=$(wait_addr "$r0log" "$r0pid")
r1=$(wait_addr "$r1log" "$r1pid")
"$shbin" -addr 127.0.0.1:0 -backends "$r0,$r1" -probe 50ms -fail-threshold 2 -recover-threshold 2 >"$rr_log" 2>&1 &
rrpid=$!; pids+=("$rrpid")
rrouter=$(wait_addr "$rr_log" "$rrpid")
echo "   probing router $rrouter -> $r0 + $r1"

rsolved=$(curl -fsS "$rrouter/v1/solve" -d "$problem")
grep -q '"state":"done"' <<<"$rsolved" || fail "replicated solve" "$rsolved"
rrid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$rsolved")

# Wait for ring replication to converge: a replica exists and nothing
# is pending anywhere in the fleet.
for _ in $(seq 1 100); do
    rstats=$(curl -fsS "$rrouter/v1/stats" || true)
    if grep -qE '"replicas":[1-9]' <<<"$rstats" && ! grep -qE '"replication_pending":[1-9]' <<<"$rstats"; then
        break
    fi
    sleep 0.1
done
grep -qE '"replicas":[1-9]' <<<"$rstats" || fail "replication never converged" "$rstats"

# The job's exact answer, then SIGKILL the backend that owns it.
before=$(curl -fsSL "$rrouter/v1/jobs/$rrid")
if [[ "$rrid" == r0-* ]]; then victim_pid=$r0pid; victim_url=$r0; victim_log_args=(-id-prefix r0- -store "$workdir/rstore0")
else victim_pid=$r1pid; victim_url=$r1; victim_log_args=(-id-prefix r1- -store "$workdir/rstore1"); fi
kill -9 "$victim_pid"; wait "$victim_pid" 2>/dev/null || true

# The prober marks it down and promotes its replicas on the successor.
for _ in $(seq 1 100); do
    rshards=$(curl -fsS "$rrouter/v1/shards" || true)
    grep -q '"health":"down"' <<<"$rshards" && grep -qE '"promotions":[1-9]' <<<"$rshards" && break
    sleep 0.1
done
grep -qE '"promotions":[1-9]' <<<"$rshards" || fail "router never promoted the dead backend's replicas" "$rshards"

# The dead backend's job still answers through the router — and with
# exactly the bytes it answered with before the kill.
after=$(curl -fsSL "$rrouter/v1/jobs/$rrid")
[[ "$after" == "$before" ]] || fail "promoted replica answer drifted from the original" "$after"

# Reboot the victim at the same address; the router reconciles it.
victim_port=${victim_url##*:}
vlog="$workdir/victim-reboot.log"
"$bin" -addr "127.0.0.1:$victim_port" -pool 1 "${victim_log_args[@]}" >"$vlog" 2>&1 &
vpid=$!; pids+=("$vpid")
wait_addr "$vlog" "$vpid" >/dev/null
for _ in $(seq 1 100); do
    rshards=$(curl -fsS "$rrouter/v1/shards" || true)
    if ! grep -q '"health":"down"' <<<"$rshards" && grep -qE '"reconciles":[1-9]' <<<"$rshards"; then
        break
    fi
    sleep 0.1
done
grep -qE '"reconciles":[1-9]' <<<"$rshards" || fail "router never reconciled the rejoined backend" "$rshards"
rejoined=$(curl -fsSL "$rrouter/v1/jobs/$rrid")
[[ "$rejoined" == "$before" ]] || fail "answer drifted after the rejoin" "$rejoined"

echo "server smoke OK"
