#!/usr/bin/env bash
# Smoke test for nocmapd: boot the real binary on an ephemeral port and
# drive the HTTP API with curl — health, a synchronous solve, an async
# submit/status round trip, and a recorded cache hit. CI runs this via
# `make server-smoke`; it needs only bash, curl and the Go toolchain.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/nocmapd"
log="$workdir/nocmapd.log"
cleanup() {
    [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$bin" ./cmd/nocmapd

echo "== start"
"$bin" -addr 127.0.0.1:0 -pool 2 >"$log" 2>&1 &
server_pid=$!
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's/.*listening on \(http:\/\/[0-9.:]*\).*/\1/p' "$log" | head -1)
    [[ -n "$base" ]] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "FAIL: nocmapd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
[[ -n "$base" ]] || { echo "FAIL: nocmapd never reported its address:"; cat "$log"; exit 1; }
echo "   $base"

fail() { echo "FAIL: $1"; echo "--- response: $2"; exit 1; }

echo "== healthz"
health=$(curl -fsS "$base/healthz")
grep -q '"status":"ok"' <<<"$health" || fail "healthz" "$health"

problem='{
  "problem": {
    "app": {"edges": [
      {"from": "cpu", "to": "mem", "bw": 400},
      {"from": "mem", "to": "dsp", "bw": 120},
      {"from": "dsp", "to": "cpu", "bw": 80}]},
    "topology": {"kind": "mesh", "w": 2, "h": 2, "link_bw": 1000}
  },
  "options": {"algorithm": "nmap-single"}
}'

echo "== synchronous solve"
solved=$(curl -fsS "$base/v1/solve" -d "$problem")
grep -q '"state":"done"' <<<"$solved" || fail "sync solve did not finish done" "$solved"
grep -q '"feasible":true' <<<"$solved" || fail "sync solve not feasible" "$solved"

echo "== repeated solve is a cache hit"
again=$(curl -fsS "$base/v1/solve" -d "$problem")
grep -q '"cache_hit":true' <<<"$again" || fail "resubmission was not a cache hit" "$again"
stats=$(curl -fsS "$base/v1/stats")
grep -q '"cache_hits":1' <<<"$stats" || fail "stats did not record the cache hit" "$stats"

echo "== async submit / status / events"
job=$(curl -fsS "$base/v1/jobs" -d "${problem/nmap-single/nmap-split}")
id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$job")
[[ -n "$id" ]] || fail "submit returned no job id" "$job"
status=""
for _ in $(seq 1 100); do
    status=$(curl -fsS "$base/v1/jobs/$id")
    grep -q '"state":"done"' <<<"$status" && break
    grep -qE '"state":"(failed|cancelled)"' <<<"$status" && fail "async job ended badly" "$status"
    sleep 0.1
done
grep -q '"state":"done"' <<<"$status" || fail "async job never finished" "$status"
events=$(curl -fsS "$base/v1/jobs/$id/events")
grep -q '^event: done' <<<"$events" || fail "event stream had no done event" "$events"

echo "== typed error on an infeasible problem"
bad=$(curl -sS "$base/v1/jobs" -d '{
  "problem": {
    "app": {"edges": [{"from": "a", "to": "b", "bw": 1000}]},
    "topology": {"kind": "mesh", "w": 2, "h": 2, "link_bw": 100}}}')
grep -q '"code":"infeasible_bandwidth"' <<<"$bad" || fail "infeasible problem not typed" "$bad"

echo "== graceful shutdown"
kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""

echo "server smoke OK"
