#!/usr/bin/env bash
# Coverage gate: run the public packages' tests with -cover and fail if
# any package in scripts/cover_thresholds.txt reports statement coverage
# below its recorded floor. CI runs this via `make cover`.
set -euo pipefail
cd "$(dirname "$0")/.."

thresholds=scripts/cover_thresholds.txt
out=$(mktemp)
trap 'rm -f "$out"' EXIT

pkgs=$(awk '!/^#/ && NF >= 2 {print $1}' "$thresholds")
[[ -n "$pkgs" ]] || { echo "FAIL: no packages listed in $thresholds"; exit 1; }

echo "== go test -cover"
# shellcheck disable=SC2086
go test -count=1 -cover $pkgs | tee "$out"

fail=0
while read -r pkg floor; do
    line=$(grep -E "^ok[[:space:]]+$pkg[[:space:]]" "$out" || true)
    if [[ -z "$line" ]]; then
        echo "FAIL: no coverage line for $pkg (tests failed or package missing)"
        fail=1
        continue
    fi
    got=$(sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' <<<"$line")
    if [[ -z "$got" ]]; then
        echo "FAIL: $pkg reported no coverage figure"
        fail=1
        continue
    fi
    if awk -v g="$got" -v f="$floor" 'BEGIN { exit !(g < f) }'; then
        echo "FAIL: $pkg coverage $got% is below the recorded floor $floor%"
        fail=1
    else
        echo "ok: $pkg coverage $got% >= $floor%"
    fi
done < <(awk '!/^#/ && NF >= 2 {print $1, $2}' "$thresholds")

if [[ "$fail" -ne 0 ]]; then
    echo "coverage gate FAILED (floors in $thresholds)"
    exit 1
fi
echo "coverage gate OK"
