#!/usr/bin/env bash
# make lint: formatting and go vet are blocking everywhere. staticcheck
# and govulncheck add deeper bug-pattern and known-CVE coverage, but
# they are external modules the build cannot assume: when the binaries
# are installed (CI installs the pinned versions below) they are
# blocking too; when absent the script says so and moves on.
set -u

# Pinned versions — keep the CI install step in .github/workflows/ci.yml
# in sync with these.
STATICCHECK_VERSION="2025.1.1"
GOVULNCHECK_VERSION="v1.1.4"

fail=0

# Fixture modules under testdata are analyzer inputs, not shipped code.
unformatted=$(gofmt -l . | grep -v testdata || true)
if [ -n "$unformatted" ]; then
	echo "FAIL: gofmt -w needed on:"
	echo "$unformatted"
	fail=1
fi

go vet ./... || fail=1

if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./... || fail=1
else
	echo "lint: staticcheck not installed, skipping (CI pins honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION})"
fi

if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || fail=1
else
	echo "lint: govulncheck not installed, skipping (CI pins golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION})"
fi

if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "lint OK"
